#include "workflow/esse_workflow_sim.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <memory>

#include "common/error.hpp"
#include "common/telemetry.hpp"
#include "mtc/execution_backend.hpp"

namespace essex::workflow {

namespace {

using mtc::ClusterScheduler;
using mtc::JobContext;
using mtc::JobId;
using mtc::JobRecord;
using mtc::JobStatus;
using mtc::Simulator;
using mtc::TaskOutcome;
using mtc::TaskReport;
using mtc::TaskState;

/// Per-member accounting collected by the drivers.
struct MemberStats {
  double pert_cpu = 0;   ///< busy part of the pert phase (wall s)
  double pert_io = 0;    ///< blocked part of the pert phase (wall s)
  bool completed = false;
};

/// Shared context the job bodies write into. Owned by the drivers.
struct BodyEnv {
  ClusterScheduler& sched;
  EsseWorkflowConfig cfg;
  std::vector<MemberStats> stats;
  std::function<void(std::size_t)> on_output_home;  // may be empty
};

/// The singleton job body (paper Fig. 3/4 "Pert" + "Forecast"):
/// stage input → pert (cpu + local-fs busy part) → pemodel → copy-back.
ClusterScheduler::JobBody make_member_body(std::shared_ptr<BodyEnv> env,
                                           std::size_t member) {
  return [env, member](JobContext& ctx) {
    // The pert phase starts when the job starts: input staging is part
    // of it (that is exactly what the paper's 20 % utilisation measures).
    const double t_pert_start = env->sched.sim().now();
    auto after_input = [env, member, &ctx, t_pert_start]() {
      const mtc::EsseJobShape& sh = env->cfg.shape;
      ctx.compute(sh.pert_cpu_s, [env, member, &ctx, t_pert_start] {
        const mtc::EsseJobShape& sh2 = env->cfg.shape;
        ctx.busy_wait(sh2.pert_fs_s, [env, member, &ctx, t_pert_start] {
          const mtc::EsseJobShape& sh3 = env->cfg.shape;
          // pert done: split its wall time into busy vs blocked for the
          // utilisation metric (§5.2.1's ≈20 % → ≈100 %).
          MemberStats& ms = env->stats[member];
          ms.pert_cpu = sh3.pert_cpu_s / ctx.cpu_speed() + sh3.pert_fs_s;
          ms.pert_io =
              (env->sched.sim().now() - t_pert_start) - ms.pert_cpu;
          ctx.compute(sh3.pemodel_cpu_s, [env, member, &ctx] {
            ctx.transfer(env->sched.nfs(), env->cfg.shape.output_bytes,
                         [env, member, &ctx] {
                           env->stats[member].completed = true;
                           ctx.finish();
                           if (env->on_output_home)
                             env->on_output_home(member);
                         });
          });
        });
      });
    };

    switch (env->cfg.staging) {
      case mtc::InputStaging::kNfsDirect:
        // Shared input files read over NFS: contended with every other
        // concurrently-starting singleton.
        ctx.transfer(env->sched.nfs(), env->cfg.shape.input_bytes,
                     after_input);
        break;
      case mtc::InputStaging::kOpenDapRemote: {
        // §5.3.2: hundreds of per-variable requests against one central
        // OpenDAP server — request latency on top of the shared read.
        const double latency =
            static_cast<double>(env->cfg.shape.opendap_requests) *
            env->cfg.shape.opendap_request_latency_s;
        ctx.wait(latency, [env, &ctx, after_input] {
          ctx.transfer(env->sched.nfs(), env->cfg.shape.input_bytes,
                       after_input);
        });
        break;
      }
      case mtc::InputStaging::kPrestageLocal:
        // Prestaged: the inputs already sit on the local disk, their
        // read cost is inside pert's local-fs busy part.
        after_input();
        break;
    }
  };
}

double head_speed(const ClusterScheduler& sched,
                  const EsseWorkflowConfig& cfg) {
  ESSEX_REQUIRE(cfg.master_node < sched.cluster().nodes.size(),
                "master node index out of range");
  return sched.cluster().nodes[cfg.master_node].cpu_speed;
}

void fill_common_metrics(const ClusterScheduler& sched,
                         const std::vector<JobId>& member_jobs,
                         const std::vector<MemberStats>& stats,
                         WorkflowMetrics& m) {
  // Serial driver: one job per member, so job-level and member-level
  // accounting coincide.
  m.members_dispatched = member_jobs.size();
  for (JobId id : member_jobs) {
    const JobRecord& r = sched.record(id);
    switch (r.status) {
      case JobStatus::kDone:
        ++m.members_completed;
        break;
      case JobStatus::kFailed:
      case JobStatus::kEvicted:
        ++m.members_failed;
        // No retry layer in the Fig.-3 driver: a failed job is a lost
        // member.
        ++m.members_lost;
        break;
      case JobStatus::kCancelled:
      case JobStatus::kQueued:
      case JobStatus::kRunning:
        ++m.members_cancelled;
        ++m.members_cancelled_final;
        // Wasted work = core occupancy of a killed member (its partial
        // segments burnt real node time even though cpu accounting only
        // credits completed segments).
        if (r.started > 0) m.wasted_cpu_seconds += r.finished - r.started;
        break;
    }
  }
  double util_sum = 0;
  std::size_t util_n = 0;
  for (const auto& s : stats) {
    if (s.pert_cpu > 0) {
      util_sum += s.pert_cpu / std::max(s.pert_cpu + s.pert_io, 1e-9);
      ++util_n;
    }
  }
  m.pert_cpu_utilization =
      util_n ? util_sum / static_cast<double>(util_n) : 0;
}

/// Publish the workflow's §5 figures into the telemetry session so the
/// benches/tests read them out of recorded metrics, not driver fields.
void publish_workflow_metrics(telemetry::Sink* sink,
                              const ClusterScheduler& sched,
                              const WorkflowMetrics& m) {
  if (!sink) return;
  sink->gauge_set("workflow.makespan_s", m.makespan_s);
  sink->gauge_set("workflow.converged", m.converged ? 1.0 : 0.0);
  sink->gauge_set("workflow.converged_at_s", m.converged_at_s);
  sink->gauge_set("workflow.deadline_hit", m.deadline_hit ? 1.0 : 0.0);
  sink->gauge_set("workflow.pert_cpu_utilization", m.pert_cpu_utilization);
  sink->gauge_set("workflow.wasted_cpu_seconds", m.wasted_cpu_seconds);
  sink->gauge_set("workflow.svd_idle_wait_s", m.svd_idle_wait_s);
  sink->count("workflow.members_completed",
              static_cast<double>(m.members_completed));
  sink->count("workflow.members_cancelled",
              static_cast<double>(m.members_cancelled));
  sink->count("workflow.members_failed",
              static_cast<double>(m.members_failed));
  sink->count("workflow.members_diffed",
              static_cast<double>(m.members_diffed));
  sink->count("workflow.svd_runs", static_cast<double>(m.svd_runs));
  sink->count("workflow.nfs_bytes_moved", m.nfs_bytes_moved);
  sink->count("workflow.members_retried",
              static_cast<double>(m.members_retried));
  sink->count("workflow.members_evicted",
              static_cast<double>(m.members_evicted));
  sink->count("workflow.members_lost",
              static_cast<double>(m.members_lost));
  sink->gauge_set("workflow.degraded", m.degraded ? 1.0 : 0.0);
  const double denom =
      m.makespan_s * static_cast<double>(sched.schedulable_cores());
  sink->gauge_set("workflow.core_utilisation",
                  denom > 0 ? sched.busy_core_seconds() / denom : 0.0);
}

// ---- serial driver (Fig. 3) --------------------------------------------

struct SerialDriver : std::enable_shared_from_this<SerialDriver> {
  Simulator& sim;
  ClusterScheduler& sched;
  EsseWorkflowConfig cfg;
  std::shared_ptr<BodyEnv> env;
  WorkflowMetrics metrics;
  std::vector<JobId> member_jobs;
  std::size_t round_target = 0;
  std::size_t submitted = 0;
  std::size_t landed_this_round = 0;
  std::size_t expected_this_round = 0;
  std::size_t diffed_total = 0;
  bool done = false;

  SerialDriver(Simulator& s, ClusterScheduler& c,
               const EsseWorkflowConfig& config)
      : sim(s), sched(c), cfg(config) {
    env = std::make_shared<BodyEnv>(BodyEnv{sched, cfg, {}, nullptr});
    env->stats.resize(cfg.max_members + 1);
  }

  void start() {
    if (cfg.sink) sched.set_telemetry(cfg.sink);
    round_target = cfg.initial_members;
    launch_round();
  }

  void launch_round() {
    // Fig. 3 bottleneck 1: the perturb/forecast loop must fully finish
    // (including failures) before the diff loop may start.
    expected_this_round = round_target - submitted;
    landed_this_round = 0;
    auto self = shared_from_this();
    sched.set_completion_hook([self](const JobRecord&) {
      ++self->landed_this_round;
      if (self->landed_this_round == self->expected_this_round)
        self->diff_stage();
    });
    std::vector<ClusterScheduler::JobBody> bodies;
    for (std::size_t m = submitted; m < round_target; ++m) {
      bodies.push_back(make_member_body(env, m));
    }
    submitted = round_target;
    auto ids = sched.submit_array(std::move(bodies));
    member_jobs.insert(member_jobs.end(), ids.begin(), ids.end());
  }

  void diff_stage() {
    // Diff every completed-but-undiffed member, strictly serially on the
    // master (Fig. 3 bottleneck 2: "the same file is written to").
    std::size_t completed = 0;
    for (const auto& s : env->stats)
      if (s.completed) ++completed;
    const std::size_t new_members = completed - diffed_total;
    const double diff_time = static_cast<double>(new_members) *
                             cfg.shape.diff_cpu_s / head_speed(sched, cfg);
    diffed_total = completed;
    auto self = shared_from_this();
    sim.after(diff_time, [self] { self->svd_stage(); });
  }

  void svd_stage() {
    // Fig. 3 bottleneck 3: the SVD waits for the diff loop.
    ++metrics.svd_runs;
    if (cfg.sink)
      cfg.sink->event("workflow.svd_run", sim.now(),
                      static_cast<double>(diffed_total));
    auto self = shared_from_this();
    sim.after(cfg.shape.svd_seconds(diffed_total, head_speed(sched, cfg)),
              [self] { self->convergence_stage(); });
  }

  void convergence_stage() {
    metrics.members_diffed = diffed_total;
    if (diffed_total >= cfg.converge_at) {
      metrics.converged = true;
      metrics.converged_at_s = sim.now();
      if (cfg.sink)
        cfg.sink->event("workflow.converged", sim.now(),
                        static_cast<double>(diffed_total));
      finish();
      return;
    }
    if (round_target >= cfg.max_members) {
      finish();  // Nmax reached without convergence
      return;
    }
    // Loop back: N → N₂ and run members N+1 … N₂ (Fig. 3).
    round_target = std::min(
        cfg.max_members,
        static_cast<std::size_t>(
            std::ceil(static_cast<double>(round_target) * cfg.growth)));
    launch_round();
  }

  void finish() {
    if (done) return;
    done = true;
    metrics.makespan_s = sim.now();
    sched.set_completion_hook(nullptr);
    fill_common_metrics(sched, member_jobs, env->stats, metrics);
    metrics.nfs_bytes_moved = sched.nfs().bytes_moved();
    publish_workflow_metrics(cfg.sink, sched, metrics);
  }
};

// ---- parallel driver (Fig. 4) ------------------------------------------

struct ParallelDriver : std::enable_shared_from_this<ParallelDriver> {
  Simulator& sim;
  ClusterScheduler& sched;
  EsseWorkflowConfig cfg;
  std::shared_ptr<BodyEnv> env;
  WorkflowMetrics metrics;

  // Members are submitted through the unified ExecutionBackend API; the
  // fault layer owns retries, timeouts and straggler speculation, and
  // reports each member's *final* outcome exactly once.
  std::unique_ptr<mtc::SimExecutionBackend> backend;
  std::unique_ptr<mtc::FaultTolerantExecutor> exec;

  std::size_t target = 0;     // N
  std::size_t submitted = 0;  // members issued to the pool (M)
  std::size_t completed = 0;  // members resolved kDone
  std::size_t diffed = 0;
  std::size_t last_svd_n = 0;
  std::deque<std::size_t> diff_queue;
  std::vector<bool> output_seen;  // one diff per member, ever
  bool differ_busy = false;
  bool svd_busy = false;
  bool svd_waiting = false;
  double svd_wait_start = 0;
  std::size_t next_check = 0;
  bool done = false;
  bool draining = false;  // post-convergence final pass
  double last_activity = 0;  // last member/differ/SVD event time

  ParallelDriver(Simulator& s, ClusterScheduler& c,
                 const EsseWorkflowConfig& config)
      : sim(s), sched(c), cfg(config) {
    auto self_env = std::make_shared<BodyEnv>(BodyEnv{sched, cfg, {}, nullptr});
    self_env->stats.resize(cfg.max_members + 1);
    env = self_env;
    output_seen.resize(cfg.max_members + 1, false);
  }

  void start() {
    if (cfg.sink) sched.set_telemetry(cfg.sink);
    target = cfg.initial_members;
    next_check = std::min(cfg.svd_stride, target);
    auto self = shared_from_this();
    env->on_output_home = [self](std::size_t m) {
      self->on_member_output(m);
    };
    // Expected single-attempt runtime at unit speed — the calibrated
    // EsseJobShape timings — anchors timeouts and straggler scans.
    const double expected_runtime =
        cfg.shape.pert_cpu_s + cfg.shape.pert_fs_s + cfg.shape.pemodel_cpu_s;
    backend = std::make_unique<mtc::SimExecutionBackend>(
        sched,
        [body_env = env](std::size_t member, std::size_t /*attempt*/) {
          return make_member_body(body_env, member);
        },
        expected_runtime);
    exec = std::make_unique<mtc::FaultTolerantExecutor>(*backend, cfg.fault,
                                                        cfg.sink);
    exec->set_member_hook([self](std::size_t member, TaskOutcome outcome) {
      self->on_member_resolved(member, outcome);
    });
    exec->set_report_observer([self](const TaskReport&) {
      self->last_activity = self->sim.now();
      self->maybe_drained();
    });
    submit_up_to_pool();
    if (cfg.deadline_s > 0) {
      sim.at(cfg.deadline_s, [self] {
        if (!self->done) {
          self->metrics.deadline_hit = true;
          self->conclude(self->sim.now());
        }
      });
    }
  }

  std::size_t pool_size() const {
    const auto m = static_cast<std::size_t>(
        std::ceil(static_cast<double>(target) * cfg.pool_headroom));
    return std::min(m, cfg.max_members);
  }

  void submit_up_to_pool() {
    while (submitted < pool_size()) {
      exec->run_member(submitted++);
    }
  }

  void on_member_output(std::size_t member) {
    if (done || output_seen[member]) return;
    output_seen[member] = true;
    // The differ runs continuously, absorbing results in completion
    // order (§4.1's fix for bottleneck 2: bookkeeping, not ordering).
    diff_queue.push_back(member);
    pump_differ();
  }

  void on_member_resolved(std::size_t /*member*/, TaskOutcome outcome) {
    last_activity = sim.now();
    if (outcome == TaskOutcome::kDone) ++completed;
    maybe_drained();
  }

  void pump_differ() {
    if (differ_busy || diff_queue.empty() || done) return;
    differ_busy = true;
    diff_queue.pop_front();
    auto self = shared_from_this();
    sim.after(cfg.shape.diff_cpu_s / head_speed(sched, cfg), [self] {
      self->differ_busy = false;
      ++self->diffed;
      self->last_activity = self->sim.now();
      self->poke_svd();
      self->pump_differ();
      self->maybe_drained();
    });
  }

  void poke_svd() {
    if (done || svd_busy) return;
    if (!draining && diffed < next_check) {
      if (!svd_waiting) {
        svd_waiting = true;
        svd_wait_start = sim.now();
      }
      return;
    }
    if (draining && diffed <= last_svd_n) return;
    if (svd_waiting) {
      metrics.svd_idle_wait_s += sim.now() - svd_wait_start;
      svd_waiting = false;
    }
    svd_busy = true;
    const std::size_t n = diffed;  // the "safe file" snapshot
    ++metrics.svd_runs;
    if (cfg.sink)
      cfg.sink->event("workflow.svd_run", sim.now(),
                      static_cast<double>(n));
    auto self = shared_from_this();
    sim.after(cfg.shape.svd_seconds(n, head_speed(sched, cfg)), [self, n] {
      self->svd_busy = false;
      self->last_svd_n = n;
      self->last_activity = self->sim.now();
      self->convergence_check(n);
    });
  }

  void convergence_check(std::size_t n) {
    if (done) return;
    metrics.members_diffed = diffed;
    if (draining) {
      maybe_drained();
      return;
    }
    if (n >= cfg.converge_at) {
      metrics.converged = true;
      metrics.converged_at_s = sim.now();
      if (cfg.sink)
        cfg.sink->event("workflow.converged", sim.now(),
                        static_cast<double>(n));
      apply_cancel_policy();
      return;
    }
    // Uncapped on purpose: once every possible member has been diffed a
    // next_check beyond max_members simply never triggers again, letting
    // the event queue drain (capping here would re-fire the SVD forever).
    next_check += cfg.svd_stride;
    // Staged pool growth: enlarge before the pipeline can drain (§4.1).
    if (diffed + cfg.svd_stride >= pool_size() &&
        target < cfg.max_members) {
      target = std::min(
          cfg.max_members,
          static_cast<std::size_t>(
              std::ceil(static_cast<double>(target) * cfg.growth)));
      if (cfg.sink)
        cfg.sink->event("workflow.pool_grown", sim.now(),
                        static_cast<double>(target));
      submit_up_to_pool();
    }
    poke_svd();
  }

  void apply_cancel_policy() {
    // Stop issuing retries and speculative copies first: convergence has
    // been reached, remaining work only runs out (or is spared).
    exec->enter_drain_mode();
    const bool spare = cfg.cancel_policy == CancelPolicy::kSpareNearFinish;
    for (const auto& [member, r] : exec->live_members()) {
      if (spare && r.state == TaskState::kRunning && r.started > 0) {
        // "spare any ensemble calculations close to finishing
        // (according to performance estimates ... and accumulated
        // runtime)" (§4.1).
        const double expected =
            (cfg.shape.pert_cpu_s + cfg.shape.pemodel_cpu_s) / r.node_speed +
            cfg.shape.pert_fs_s;
        const double elapsed = sim.now() - r.started;
        if (elapsed >= cfg.spare_fraction * expected) continue;
      }
      exec->cancel_member(member);
    }
    if (cfg.cancel_policy == CancelPolicy::kCancelImmediately) {
      conclude(sim.now());
      return;
    }
    // kUseAllFinished / kSpareNearFinish: diff what landed, final SVD.
    draining = true;
    maybe_drained();
  }

  void maybe_drained() {
    if (!draining || done) return;
    pump_differ();
    if (!exec->idle() || !diff_queue.empty() || differ_busy || svd_busy) {
      return;
    }
    if (last_svd_n < diffed) {
      poke_svd();  // the final SVD over all available results
      return;
    }
    conclude(sim.now());
  }

  void conclude(double t) {
    if (done) return;
    done = true;
    metrics.makespan_s = t;
    metrics.members_diffed = diffed;
    exec->cancel_all();
    const mtc::FaultStats fs = exec->stats();
    metrics.members_dispatched = submitted;
    metrics.members_completed = completed;
    // Members still unresolved at teardown were killed by cancel_all();
    // fold them into the final-cancelled tally so member outcomes always
    // conserve against the dispatched count.
    metrics.members_cancelled_final =
        fs.members_cancelled + (submitted - exec->members_resolved());
    metrics.members_retried = fs.retries;
    metrics.members_evicted = fs.evictions;
    metrics.members_lost = fs.members_lost;
    metrics.speculative_launched = fs.speculative_launched;
    metrics.speculative_won = fs.speculative_won;
    // Graceful degradation: the subspace converged, but with fewer
    // members than planned because some exhausted their retries.
    metrics.degraded = metrics.converged && fs.members_lost > 0;
    // Per-attempt accounting straight off the scheduler's records (every
    // job this driver runs on the scheduler is a member attempt).
    for (const JobRecord& r : sched.records()) {
      switch (r.status) {
        case JobStatus::kDone:
          break;
        case JobStatus::kFailed:
          ++metrics.members_failed;
          break;
        case JobStatus::kEvicted:
          if (r.started > 0) metrics.wasted_cpu_seconds += r.finished - r.started;
          break;
        default:  // cancelled (incl. timed-out and losing speculative)
          ++metrics.members_cancelled;
          if (r.started > 0) metrics.wasted_cpu_seconds += r.finished - r.started;
          break;
      }
    }
    double util_sum = 0;
    std::size_t util_n = 0;
    for (const auto& s : env->stats) {
      if (s.pert_cpu > 0) {
        util_sum += s.pert_cpu / std::max(s.pert_cpu + s.pert_io, 1e-9);
        ++util_n;
      }
    }
    metrics.pert_cpu_utilization =
        util_n ? util_sum / static_cast<double>(util_n) : 0;
    metrics.nfs_bytes_moved = sched.nfs().bytes_moved();
    publish_workflow_metrics(cfg.sink, sched, metrics);
    if (cfg.sink) {
      cfg.sink->gauge_set(
          "fault.degradation",
          target > 0 ? static_cast<double>(fs.members_lost) /
                           static_cast<double>(target)
                     : 0.0);
    }
    // Break the shared_ptr cycles through the hooks so the driver is
    // reclaimed once run_parallel_esse returns.
    exec->set_member_hook(nullptr);
    exec->set_report_observer(nullptr);
    env->on_output_home = nullptr;
  }
};

}  // namespace

WorkflowMetrics run_serial_esse(mtc::Simulator& sim,
                                mtc::ClusterScheduler& sched,
                                const EsseWorkflowConfig& config) {
  ESSEX_REQUIRE(config.initial_members >= 2, "need at least two members");
  ESSEX_REQUIRE(config.max_members >= config.initial_members,
                "Nmax must be >= N");
  auto driver = std::make_shared<SerialDriver>(sim, sched, config);
  driver->start();
  sim.run();
  driver->finish();  // no-op when already finished
  return driver->metrics;
}

WorkflowMetrics run_parallel_esse(mtc::Simulator& sim,
                                  mtc::ClusterScheduler& sched,
                                  const EsseWorkflowConfig& config) {
  ESSEX_REQUIRE(config.initial_members >= 2, "need at least two members");
  ESSEX_REQUIRE(config.max_members >= config.initial_members,
                "Nmax must be >= N");
  ESSEX_REQUIRE(config.pool_headroom >= 1.0, "pool headroom must be >= 1");
  auto driver = std::make_shared<ParallelDriver>(sim, sched, config);
  driver->start();
  sim.run();
  // No-op when already concluded. A run that drains without converging
  // ends at its last real member/differ/SVD event, not at whatever
  // leftover fault-layer timer fired last.
  driver->conclude(driver->last_activity);
  return driver->metrics;
}

FanoutMetrics run_acoustics_fanout(mtc::Simulator& sim,
                                   mtc::ClusterScheduler& sched,
                                   const mtc::EsseJobShape& shape,
                                   std::size_t n_jobs) {
  ESSEX_REQUIRE(n_jobs >= 1, "need at least one acoustics job");
  FanoutMetrics metrics;
  std::size_t landed = 0;
  sched.set_completion_hook([&](const mtc::JobRecord& rec) {
    ++landed;
    if (rec.status == JobStatus::kDone) ++metrics.completed;
    if (rec.status == JobStatus::kFailed) ++metrics.failed;
    if (landed == n_jobs) metrics.makespan_s = sim.now();
  });
  // §5.2.1: "in this case no job arrays were used" — plain singletons.
  for (std::size_t j = 0; j < n_jobs; ++j) {
    sched.submit([&shape, &sched](JobContext& ctx) {
      ctx.compute(shape.acoustics_cpu_s, [&ctx, &shape, &sched] {
        ctx.transfer(sched.nfs(), shape.acoustics_output_bytes,
                     [&ctx] { ctx.finish(); });
      });
    });
  }
  sim.run();
  sched.set_completion_hook(nullptr);
  return metrics;
}

}  // namespace essex::workflow
