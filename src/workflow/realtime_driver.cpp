#include "workflow/realtime_driver.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "linalg/stats.hpp"
#include "obs/instruments.hpp"
#include "obs/observation.hpp"

namespace essex::workflow {

RealtimeReport run_realtime_experiment(const ocean::OceanModel& model,
                                       const ocean::OceanState& initial,
                                       const ForecastTimeline& timeline,
                                       const RealtimeConfig& config) {
  ESSEX_REQUIRE(!timeline.procedures().empty(),
                "timeline needs at least one forecast procedure");
  for (std::size_t k = 1; k < timeline.procedures().size(); ++k) {
    ESSEX_REQUIRE(timeline.procedures()[k].tau_start_h >=
                      timeline.procedures()[k - 1].tau_start_h,
                  "procedures must be ordered by forecaster start");
  }

  const ocean::Grid3D& grid = model.grid();
  const la::Vector climatology = initial.pack();

  // Initial error subspace (inflated spin-up spread, DESIGN.md §2).
  esse::ErrorSubspace raw = esse::bootstrap_subspace(
      model, initial, timeline.t0(), config.bootstrap_spinup_h,
      config.bootstrap_samples, 0.999, config.max_rank, config.truth_seed);
  la::Vector inflated = raw.sigmas();
  for (auto& s : inflated) s *= config.bootstrap_inflation;
  esse::ErrorSubspace subspace(raw.modes(), inflated);

  // Hidden twin truth: displaced initial state + its own model noise.
  ocean::OceanState truth(grid);
  {
    Rng draw(config.truth_seed, 3);
    la::Vector x = climatology;
    la::Vector d = subspace.sample(draw);
    for (std::size_t i = 0; i < x.size(); ++i) x[i] += d[i];
    truth.unpack(x, grid);
  }
  Rng truth_rng(config.truth_seed, 1);
  double truth_time = timeline.t0();

  auto truth_at = [&](double t_h) -> const ocean::OceanState& {
    ESSEX_REQUIRE(t_h >= truth_time - 1e-9,
                  "truth cannot be rewound — order procedures in time");
    if (t_h > truth_time) {
      model.run(truth, truth_time, t_h - truth_time, &truth_rng);
      truth_time = t_h;
    }
    return truth;
  };

  RealtimeReport report;
  ocean::OceanState analysis_state = initial;
  double analysis_time = timeline.t0();
  Rng obs_rng(config.truth_seed, 9);

  for (std::size_t k = 0; k < timeline.procedures().size(); ++k) {
    const double nowcast_h = timeline.nowcast_boundary(k);
    const double forecast_h = timeline.procedures()[k].sim_end_h;
    ESSEX_REQUIRE(nowcast_h >= analysis_time,
                  "nowcast boundary precedes the previous analysis");

    // Observations available to this procedure, sampled at the nowcast.
    const ocean::OceanState& truth_now = truth_at(nowcast_h);
    obs::ObservationSet campaign =
        obs::aosn_campaign(grid, truth_now, obs_rng);
    obs::ObsOperator h(grid, campaign);

    // Ensemble forecast from the last analysis to the nowcast, then the
    // ESSE update.
    esse::CycleParams cp = config.cycle;
    cp.forecast_hours = std::max(nowcast_h - analysis_time, 1e-3);
    esse::CycleResult cycle = esse::run_assimilation_cycle(
        model, analysis_state, subspace, analysis_time, h, cp);

    ProcedureReport pr;
    pr.procedure = k;
    pr.nowcast_h = nowcast_h;
    pr.forecast_h = forecast_h;
    pr.obs_assimilated = h.count();
    pr.members_run = cycle.forecast.members_run;
    pr.converged = cycle.forecast.converged;

    const la::Vector truth_vec = truth_now.pack();
    pr.nowcast_prior =
        esse::skill(cycle.forecast.central_forecast, truth_vec, climatology);
    pr.nowcast_posterior =
        esse::skill(cycle.analysis.posterior_state, truth_vec, climatology);
    pr.spread_skill = esse::spread_skill_ratio(
        cycle.forecast.forecast_subspace, cycle.forecast.central_forecast,
        truth_vec);
    report.persistence_rmse.push_back(
        la::rms_diff(climatology, truth_vec));

    // Forecast proper: deterministic run of the posterior to sim_end.
    ocean::OceanState posterior(grid);
    posterior.unpack(cycle.analysis.posterior_state, grid);
    if (forecast_h > nowcast_h) {
      ocean::OceanState fc = posterior;
      model.run(fc, nowcast_h, forecast_h - nowcast_h, nullptr);
      // Copy the truth so later procedures can still advance it lazily.
      ocean::OceanState truth_future = truth;
      Rng future_rng = truth_rng;  // same stream state going forward
      model.run(truth_future, truth_time, forecast_h - truth_time,
                &future_rng);
      pr.forecast_skill =
          esse::skill(fc.pack(), truth_future.pack(), climatology);
    } else {
      pr.forecast_skill = pr.nowcast_posterior;
    }

    report.procedures.push_back(pr);

    // Hand the analysis to the next cycle, inflating the spread to
    // account for error growth outside the subspace.
    analysis_state = posterior;
    analysis_time = nowcast_h;
    la::Vector next_sigmas = cycle.analysis.posterior_subspace.sigmas();
    for (auto& s : next_sigmas) s *= config.cycle_inflation;
    subspace = esse::ErrorSubspace(cycle.analysis.posterior_subspace.modes(),
                                   next_sigmas);
  }
  return report;
}

}  // namespace essex::workflow
