// ESSEX: the real (in-process) Fig. 4 parallel ESSE runner.
//
// Runs actual ocean-model ensemble members on a thread pool with the MTC
// semantics of §4.1: a task pool of size M ≥ N, a continuously-updated
// differ, an SVD/convergence thread reading snapshots through the
// triple-buffer covariance store, cancellation of queued members on
// convergence, and staged pool growth. This is the scientific counterpart
// of the DES driver in esse_workflow_sim.hpp — same structure, real
// numbers.
#pragma once

#include <cstddef>

#include "esse/convergence.hpp"
#include "esse/cycle.hpp"
#include "esse/differ.hpp"
#include "esse/error_subspace.hpp"
#include "ocean/model.hpp"
#include "workflow/covariance_store.hpp"

namespace essex::workflow {

/// Configuration of the real parallel runner (numerics shared with
/// esse::CycleParams).
struct ParallelRunnerConfig {
  esse::CycleParams cycle;     ///< perturbation/convergence/size knobs
  double pool_headroom = 1.25; ///< M = headroom × N
  std::size_t svd_min_new_members = 4;  ///< snapshot stride for the SVD
};

/// Result mirrors esse::ForecastResult plus MTC accounting.
struct ParallelRunResult {
  esse::ForecastResult forecast;
  std::size_t members_submitted = 0;
  std::size_t members_cancelled = 0;
  std::size_t svd_runs = 0;
  std::uint64_t store_versions = 0;  ///< covariance snapshots promoted
};

/// Run the uncertainty forecast with the Fig. 4 pipeline on real threads.
ParallelRunResult run_parallel_forecast(const ocean::OceanModel& model,
                                        const ocean::OceanState& initial,
                                        const esse::ErrorSubspace& subspace,
                                        double t0_hours,
                                        const ParallelRunnerConfig& config);

}  // namespace essex::workflow
