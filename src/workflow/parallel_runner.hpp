// ESSEX: the real (in-process) Fig. 4 parallel ESSE runner.
//
// Runs actual ocean-model ensemble members on a thread pool with the MTC
// semantics of §4.1: a task pool of size M ≥ N, a continuously-updated
// differ, an SVD/convergence thread reading snapshots through the
// triple-buffer covariance store, cancellation of queued members on
// convergence, and staged pool growth. This is the scientific counterpart
// of the DES driver in esse_workflow_sim.hpp — same structure, real
// numbers.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "esse/convergence.hpp"
#include "esse/cycle.hpp"
#include "esse/differ.hpp"
#include "esse/error_subspace.hpp"
#include "mtc/fault.hpp"
#include "ocean/model.hpp"
#include "workflow/covariance_store.hpp"

namespace essex::telemetry {
class Sink;
}

namespace essex::workflow {

/// Configuration of the real parallel runner (numerics shared with
/// esse::CycleParams).
struct ParallelRunnerConfig {
  esse::CycleParams cycle;     ///< perturbation/convergence/size knobs
  double pool_headroom = 1.25; ///< M = headroom × N
  std::size_t svd_min_new_members = 4;  ///< snapshot stride for the SVD
  /// Recovery policy: a member whose attempt throws (or is injected to
  /// fail) is resubmitted with jittered backoff through the same
  /// FaultTolerantExecutor the DES driver uses.
  mtc::FaultPolicy fault;
  /// Failure injection for tests/benches: attempt (member, k) throws
  /// with `inject.segment.probability`, drawn from a per-attempt RNG
  /// stream.
  mtc::FaultInjection inject;
  /// Test hook, called on the worker thread just before a finished
  /// member's forecast is absorbed into the differ. The determinism
  /// harness uses it to impose adversarial absorption orders (hold some
  /// members back until others have landed); the forecast result must be
  /// bitwise identical no matter what this does. Leave empty in
  /// production.
  std::function<void(std::size_t member_id)> arrival_hook;
};

/// Everything one forecast invocation needs, in one place: adding a knob
/// here no longer ripples through every example/test/bench call site.
/// The referenced model/state/subspace must outlive the call.
struct ForecastRequest {
  const ocean::OceanModel& model;
  const ocean::OceanState& initial;
  const esse::ErrorSubspace& subspace;
  double t0_hours = 0.0;
  ParallelRunnerConfig config{};
  /// Optional telemetry sink (nullable, not owned). The runner records
  /// `runner.*` counters/histograms with wall-clock spans for member and
  /// SVD work, and forwards it to the numerics (`esse.*` convergence
  /// stream) unless `config.cycle.sink` is already set.
  telemetry::Sink* sink = nullptr;
};

/// One named problem with a request's configuration. A server must be
/// able to *reject* a malformed request instead of aborting, so the
/// validation surface returns data rather than firing ESSEX_REQUIRE:
/// the ForecastService maps a non-empty issue list onto a structured
/// kInvalidRequest rejection, while the one-shot entry points join the
/// messages into the PreconditionError they always threw.
struct ValidationIssue {
  std::string field;    ///< dotted path, e.g. "config.pool_headroom"
  std::string message;  ///< human-readable constraint that failed
};

/// Check every documented constraint of the runner configuration.
/// Returns an empty vector when the config is well-formed.
std::vector<ValidationIssue> validate(const ParallelRunnerConfig& config);

/// Check the full request: the config's constraints plus the
/// state-vs-subspace dimension agreement.
std::vector<ValidationIssue> validate(const ForecastRequest& request);

/// Join issues into one "field: message; field: message" line (for
/// exceptions and rejection payloads). Empty string for no issues.
std::string describe(const std::vector<ValidationIssue>& issues);

/// Admission work units of one request: planned ensemble cost in
/// (members × model steps × packed state size), with multilevel member
/// mixes discounted by their per-level cost ratios. The ForecastService
/// feeds this to the RuntimeEstimator so its EWMA tracks seconds *per
/// work unit* — a burst of small requests can no longer poison the
/// admission estimate for a large one (and vice versa).
double forecast_work_units(const ForecastRequest& request);

/// Run the uncertainty forecast with the Fig. 4 pipeline on real threads.
/// Returns the unified forecast result; `result.mtc` carries the MTC
/// accounting (pool size, cancellations, SVD runs, store versions) fed by
/// the recorded metrics.
///
/// Since the ForecastService redesign this is a thin convenience wrapper:
/// it validates the request (throwing PreconditionError on issues, as it
/// always has), stands up a one-request essex::service::ForecastService
/// sized to `config.cycle.threads`, and blocks on the handle — so every
/// caller, bench and testkit oracle exercises the service path. The
/// definition lives in src/service/forecast_service.cpp; link
/// essex_service.
///
/// Determinism contract (DESIGN.md §10): for a fixed configuration and
/// seed the returned central forecast, subspace, convergence history and
/// members_run are bitwise identical for any thread count and any member
/// completion order. Convergence is checked on a fixed milestone schedule
/// (ensemble sizes k·svd_min_new_members) over the canonical contiguous
/// member-id prefix, so which members feed each check — and which check
/// declares convergence — never depends on scheduling. Only the wall-
/// clock fields of `result.mtc` (timings, store versions, retry counts
/// under real faults) remain timing-dependent.
esse::ForecastResult run_parallel_forecast(const ForecastRequest& request);

}  // namespace essex::workflow
