// ESSEX: the real-time forecasting experiment of Fig. 1 / §2.1.
//
// "During the experiment, for each prediction k, the forecaster repeats
// a set of tasks ... the processing of the currently available data and
// model, the computation of data-driven forecast simulations, and the
// study, selection and web-distribution of the best forecasts."
//
// run_realtime_experiment() plays a whole at-sea campaign against a
// hidden twin truth: for every forecast procedure on the timeline it
// forecasts the ensemble to the nowcast boundary, assimilates the
// observation batches available by the procedure's start, issues the
// forecast proper to the procedure's last prediction time, and scores
// everything against the truth — the cycle-over-cycle skill series a
// real-time exercise is judged by.
#pragma once

#include <cstddef>
#include <vector>

#include "esse/cycle.hpp"
#include "esse/verification.hpp"
#include "ocean/model.hpp"
#include "workflow/timeline.hpp"

namespace essex::workflow {

struct RealtimeConfig {
  esse::CycleParams cycle;  ///< per-procedure ensemble numerics
  /// Initial-uncertainty bootstrap: spin-up length and sample count.
  double bootstrap_spinup_h = 12.0;
  std::size_t bootstrap_samples = 12;
  double bootstrap_inflation = 5.0;  ///< realistic IC error ≫ model noise
  /// Multiplicative inflation of the posterior spread handed to the next
  /// cycle — compensates error growth the subspace cannot represent
  /// (unresolved model error); 1.0 disables.
  double cycle_inflation = 1.3;
  std::size_t max_rank = 12;
  std::uint64_t truth_seed = 777;
};

/// Scores of one forecast procedure τ_k.
struct ProcedureReport {
  std::size_t procedure = 0;
  double nowcast_h = 0;        ///< analysis (nowcast) time
  double forecast_h = 0;       ///< last prediction time
  std::size_t obs_assimilated = 0;
  std::size_t members_run = 0;
  bool converged = false;
  esse::SkillScore nowcast_prior;   ///< central forecast vs truth @nowcast
  esse::SkillScore nowcast_posterior;  ///< analysis vs truth @nowcast
  esse::SkillScore forecast_skill;  ///< forecast proper vs truth @sim_end
  double spread_skill = 0;          ///< predicted spread / actual error
};

struct RealtimeReport {
  std::vector<ProcedureReport> procedures;
  /// Persistence baseline: RMSE of "no forecast, keep the initial state"
  /// at each procedure's nowcast (what skill is measured against).
  std::vector<double> persistence_rmse;
};

/// Run the experiment. The timeline must contain at least one procedure
/// and its procedures must be ordered by tau_start. Observations are
/// AOSN-like campaigns sampled from the twin truth at each nowcast.
RealtimeReport run_realtime_experiment(const ocean::OceanModel& model,
                                       const ocean::OceanState& initial,
                                       const ForecastTimeline& timeline,
                                       const RealtimeConfig& config);

}  // namespace essex::workflow
