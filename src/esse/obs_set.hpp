// ESSEX: the assimilation-ready observation set.
//
// The unified analyze() entry point (analysis.hpp) consumes one shape of
// observation regardless of where it came from: a sparse linear stencil
// on the packed state plus a value, a noise variance and — when known —
// a horizontal position for localization. Adapters lower both existing
// front ends onto it: obs::ObsOperator (gridded interpolation stencils,
// positioned) and the generic LinearObservation list (arbitrary joint
// states, unpositioned). Unpositioned entries are visible to every tile,
// untapered — the only defensible default when no geometry is attached.
//
// The stencil evaluation order is part of the contract: apply()/
// apply_mode() accumulate in stencil order, exactly as ObsOperator and
// the historical analyze_linear loop did, so the global analysis path
// stays bitwise identical through the adapters.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "linalg/matrix.hpp"
#include "obs/observation.hpp"

namespace essex::esse {

/// A generic linear scalar observation on an arbitrary state vector:
/// y = Σ weight·x[index] + ε with ε ~ N(0, variance). Lets callers (e.g.
/// the coupled physical–acoustical assimilation of §2.2) reuse the ESSE
/// update on joint states that are not ocean grids.
struct LinearObservation {
  std::vector<std::pair<std::size_t, double>> stencil;
  double value = 0;
  double variance = 1.0;
};

/// One observation in assimilation form.
struct ObsEntry {
  std::vector<std::pair<std::size_t, double>> stencil;
  double value = 0;
  double variance = 1.0;  ///< diagonal R entry, must be positive
  bool positioned = false;  ///< has a horizontal location for localization
  double x_km = 0;
  double y_km = 0;
};

/// The observation batch one analyze() call assimilates.
class ObsSet {
 public:
  ObsSet() = default;
  explicit ObsSet(std::vector<ObsEntry> entries)
      : entries_(std::move(entries)) {}

  /// Positioned entries from a gridded measurement operator.
  static ObsSet from_operator(const obs::ObsOperator& h);

  /// Unpositioned entries from generic linear observations.
  static ObsSet from_linear(const std::vector<LinearObservation>& obs);

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  const ObsEntry& entry(std::size_t i) const { return entries_[i]; }
  const std::vector<ObsEntry>& entries() const { return entries_; }

  /// H_i·x (stencil-order accumulation). Indices must be inside x.
  double apply_entry(std::size_t i, const la::Vector& x) const;

  /// H_i applied to column `col` of a matrix of packed-state rows.
  double apply_mode(std::size_t i, const la::Matrix& modes,
                    std::size_t col) const;

  /// d = yᵒ − H·x over the whole set.
  la::Vector innovations(const la::Vector& x) const;

 private:
  std::vector<ObsEntry> entries_;
};

/// The same observations in *canonical* order: a total content order
/// (stencil, then value, variance and position, compared exactly), so
/// any permutation of the same entries sorts to one sequence — entries
/// with identical content are interchangeable, so even their relative
/// order cannot change a serial sweep. This is what makes the
/// order-dependent ESRF method arrival-invariant (DESIGN.md §16): the
/// result depends on the *set*, never on how the batch was assembled.
ObsSet canonical_obs_order(const ObsSet& obs);

}  // namespace essex::esse
