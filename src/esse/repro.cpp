#include "esse/repro.hpp"

#include <cstdint>
#include <sstream>

#include "common/digest.hpp"
#include "esse/subspace_io.hpp"

namespace essex::esse {

namespace {

void put_u64(std::ostream& out, std::uint64_t v) {
  // Little-endian, explicitly: the digest must not depend on how the
  // host lays out integers.
  for (int i = 0; i < 8; ++i) {
    const char b = static_cast<char>(v >> (8 * i));
    out.put(b);
  }
}

void put_doubles(std::ostream& out, const la::Vector& v) {
  put_u64(out, v.size());
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(double)));
}

}  // namespace

std::string serialize_forecast_product(const ForecastResult& result) {
  std::ostringstream out(std::ios::binary);
  out.write("ESSEXRPR", 8);
  put_doubles(out, result.central_forecast);
  put_u64(out, result.forecast_subspace.empty() ? 0 : 1);
  if (!result.forecast_subspace.empty()) {
    // Same bytes as the on-disk subspace product file, so "identical
    // digest" and "identical covariance file" are the same statement.
    save_subspace(out, result.forecast_subspace);
    put_doubles(out, result.forecast_subspace.marginal_stddev());
  }
  put_u64(out, result.members_run);
  put_u64(out, result.converged ? 1 : 0);
  put_u64(out, result.convergence_history.size());
  for (const ConvergenceTest::Sample& s : result.convergence_history) {
    put_u64(out, s.n_members);
    out.write(reinterpret_cast<const char*>(&s.similarity),
              sizeof(s.similarity));
  }
  // Trailing optional block: multi-model runs append the surrogate
  // forecast; default runs emit no extra bytes at all, so every
  // pre-existing golden digest is untouched.
  if (result.surrogate_forecast) {
    out.write("SURROGAT", 8);
    put_doubles(out, *result.surrogate_forecast);
  }
  return std::move(out).str();
}

std::string forecast_digest(const ForecastResult& result) {
  return sha256_hex(serialize_forecast_product(result));
}

std::string serialize_analysis_product(const AnalysisResult& result) {
  std::ostringstream out(std::ios::binary);
  out.write("ESSEXAPR", 8);
  put_doubles(out, result.posterior_state);
  put_u64(out, result.posterior_subspace.empty() ? 0 : 1);
  if (!result.posterior_subspace.empty()) {
    save_subspace(out, result.posterior_subspace);
    put_doubles(out, result.posterior_subspace.marginal_stddev());
  }
  const double scalars[4] = {
      result.prior_innovation_rms, result.posterior_innovation_rms,
      result.prior_trace, result.posterior_trace};
  out.write(reinterpret_cast<const char*>(scalars), sizeof(scalars));
  return std::move(out).str();
}

std::string analysis_digest(const AnalysisResult& result) {
  return sha256_hex(serialize_analysis_product(result));
}

}  // namespace essex::esse
