// ESSEX: the ESSE forecast/assimilation cycle (paper Fig. 2).
//
// This is the *scientific* driver: perturb → ensemble forecast → differ →
// SVD → convergence test → (optionally) assimilate, all in-process with
// an optional thread pool. The MTC execution semantics of Fig. 4 —
// schedulers, I/O staging, cancellation policies — live in src/workflow;
// both layers share these numerics.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "esse/analysis.hpp"
#include "esse/convergence.hpp"
#include "esse/differ.hpp"
#include "esse/error_subspace.hpp"
#include "esse/multilevel.hpp"
#include "esse/perturbation.hpp"
#include "obs/observation.hpp"
#include "ocean/model.hpp"

namespace essex::telemetry {
class Sink;
}

namespace essex::esse {

/// Knobs for one forecast cycle.
struct CycleParams {
  PerturbationGenerator::Params perturbation;
  ConvergenceTest::Params convergence;
  EnsembleSizeController::Params ensemble;
  double forecast_hours = 24.0;   ///< simulation-time length of the forecast
  double variance_fraction = 0.99;  ///< subspace truncation
  std::size_t max_rank = 0;       ///< 0 = uncapped
  std::size_t check_interval = 8;  ///< members between SVD/convergence tests
  std::size_t threads = 1;        ///< worker threads for member runs
  bool stochastic_members = true;  ///< members feel model noise (dη)
  /// Localized analysis (DESIGN.md §14). Off by default: the global
  /// dense update, bitwise identical to the pre-localization cycle.
  /// When enabled, the analysis runs tiled per `tiling` and the differ's
  /// column store is sharded by the same tiling.
  LocalizationParams localization;
  ocean::TilingParams tiling;
  /// Multilevel (multi-fidelity) ensemble (DESIGN.md §15). Off by
  /// default (levels == 1): the single-level path, bitwise identical to
  /// the pre-multilevel cycle. When enabled, the MTC runner executes the
  /// planned per-level member mix instead of the adaptive
  /// `ensemble`-controller schedule (pool growth and headroom do not
  /// apply — the level layout is fixed up front so column weights are
  /// schedule-free).
  MultilevelParams multilevel;
  /// Graceful-degradation floor N′: the analysis stage accepts a forecast
  /// built from fewer members than planned (survivors of a faulty run),
  /// but refuses to assimilate below this many members.
  std::size_t min_analysis_members = 2;
  /// Analysis filter selection + multi-model surrogate knobs (DESIGN.md
  /// §16). The default — kSubspaceKalman — leaves the cycle bitwise
  /// identical to the pre-refactor path. When method == kMultiModel the
  /// forecast stage additionally integrates the deliberately-biased
  /// coarse surrogate and the analysis assimilates it as
  /// pseudo-observations.
  AnalysisParams analysis;
  /// Optional telemetry sink (nullable, not owned): the forecast loop
  /// streams `esse.convergence` events (t = ensemble size, value = ρ) and
  /// `esse.*` counters into it.
  telemetry::Sink* sink = nullptr;
};

/// MTC execution accounting attached to a forecast by task-parallel
/// runners (workflow::run_parallel_forecast); absent for the serial
/// block-synchronous driver.
struct MtcAccounting {
  std::size_t members_submitted = 0;  ///< pool size M issued (M ≥ N)
  std::size_t members_cancelled = 0;  ///< killed on convergence (§4.1)
  std::size_t svd_runs = 0;           ///< decoupled SVD invocations
  std::uint64_t store_versions = 0;   ///< covariance snapshots promoted
  // Fault-layer accounting (zero for failure-free runs).
  std::size_t members_failed = 0;     ///< attempts that threw/were injected
  std::size_t members_retried = 0;    ///< re-submissions issued
  std::size_t speculative_launched = 0;
  std::size_t speculative_won = 0;
  // Member-level final outcomes: every submitted member ends in exactly
  // one bucket, so members_done + members_cancelled_final + members_lost
  // == members_submitted (the testkit conservation oracle).
  std::size_t members_done = 0;            ///< resolved kDone
  std::size_t members_cancelled_final = 0; ///< resolved kCancelled
  std::size_t members_lost = 0;       ///< retries exhausted, member gone
  bool degraded = false;              ///< converged with N′ < N members
};

/// Outcome of the uncertainty-forecast stage. The single forecast result
/// type for both the block-synchronous driver and the MTC runner: the
/// latter additionally fills `mtc`.
struct ForecastResult {
  la::Vector central_forecast;      ///< packed central (unperturbed) run
  ErrorSubspace forecast_subspace;  ///< dominant forecast error modes
  std::size_t members_run = 0;
  bool converged = false;
  std::vector<ConvergenceTest::Sample> convergence_history;
  std::optional<MtcAccounting> mtc;  ///< set by MTC runners only
  /// Coarse companion forecast (packed, fine-grid dimension), present
  /// only when CycleParams::analysis.method == kMultiModel — the
  /// multi-model combiner's second opinion, assimilated as
  /// pseudo-observations by the analysis stage.
  std::optional<la::Vector> surrogate_forecast;
};

/// Integrate the multi-model surrogate: a deliberately-biased coarse
/// companion forecast on the coarsest level of a GridHierarchy built
/// from the fine model's grid per `analysis` (surrogate_levels /
/// surrogate_coarsen), prolonged back to the fine grid with
/// `surrogate_bias` added uniformly. Deterministic (no model noise) —
/// one extra cheap integration per cycle.
la::Vector run_surrogate_forecast(const ocean::OceanModel& model,
                                  const ocean::OceanState& initial,
                                  double t0_hours, double forecast_hours,
                                  const AnalysisParams& analysis);

/// Run the ensemble uncertainty forecast: integrate the central state and
/// `N` perturbed members from `t0_hours` for `forecast_hours`, growing N
/// per the controller until the subspace converges or Nmax is reached.
ForecastResult run_uncertainty_forecast(const ocean::OceanModel& model,
                                        const ocean::OceanState& initial,
                                        const ErrorSubspace& initial_subspace,
                                        double t0_hours,
                                        const CycleParams& params);

/// Full cycle: uncertainty forecast followed by the ESSE analysis against
/// the given observations. Returns both stages' outputs.
struct CycleResult {
  ForecastResult forecast;
  AnalysisResult analysis;
};

CycleResult run_assimilation_cycle(const ocean::OceanModel& model,
                                   const ocean::OceanState& initial,
                                   const ErrorSubspace& initial_subspace,
                                   double t0_hours,
                                   const obs::ObsOperator& h,
                                   const CycleParams& params);

/// Build an initial error subspace when no posterior from a previous
/// cycle exists: sample `n_samples` stochastic model integrations of
/// length `spinup_hours` about `initial` and take their dominant spread
/// modes. This is the "error nowcast" bootstrap.
ErrorSubspace bootstrap_subspace(const ocean::OceanModel& model,
                                 const ocean::OceanState& initial,
                                 double t0_hours, double spinup_hours,
                                 std::size_t n_samples,
                                 double variance_fraction,
                                 std::size_t max_rank, std::uint64_t seed,
                                 std::size_t threads = 1);

}  // namespace essex::esse
