#include "esse/verification.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "linalg/stats.hpp"

namespace essex::esse {

SkillScore skill(const la::Vector& estimate, const la::Vector& truth,
                 const la::Vector& climatology) {
  ESSEX_REQUIRE(estimate.size() == truth.size() &&
                    truth.size() == climatology.size(),
                "skill: length mismatch");
  ESSEX_REQUIRE(estimate.size() >= 2, "skill needs at least two elements");
  SkillScore out;
  out.rmse = la::rms_diff(estimate, truth);
  double b = 0;
  for (std::size_t i = 0; i < estimate.size(); ++i)
    b += estimate[i] - truth[i];
  out.bias = b / static_cast<double>(estimate.size());
  la::Vector ea = la::sub(estimate, climatology);
  la::Vector ta = la::sub(truth, climatology);
  out.anomaly_correlation = la::correlation(ea, ta);
  return out;
}

double spread_skill_ratio(const ErrorSubspace& subspace,
                          const la::Vector& estimate,
                          const la::Vector& truth) {
  ESSEX_REQUIRE(!subspace.empty(), "need a non-empty subspace");
  ESSEX_REQUIRE(estimate.size() == subspace.dim() &&
                    truth.size() == subspace.dim(),
                "spread_skill: length mismatch");
  const double rmse = la::rms_diff(estimate, truth);
  if (rmse <= 0) return 0.0;
  // RMS predicted stddev = sqrt(tr(P)/m).
  const double spread =
      std::sqrt(subspace.total_variance() /
                static_cast<double>(subspace.dim()));
  return spread / rmse;
}

std::vector<std::size_t> rank_histogram(
    const std::vector<la::Vector>& members, const la::Vector& truth,
    std::size_t n_probe, std::uint64_t seed) {
  ESSEX_REQUIRE(members.size() >= 2, "need at least two members");
  ESSEX_REQUIRE(n_probe >= 1, "need at least one probe");
  const std::size_t dim = truth.size();
  for (const auto& m : members) {
    ESSEX_REQUIRE(m.size() == dim, "member length mismatch");
  }
  std::vector<std::size_t> hist(members.size() + 1, 0);
  Rng rng(seed);
  for (std::size_t p = 0; p < n_probe; ++p) {
    const std::size_t i = rng.uniform_index(dim);
    std::size_t rank = 0;
    for (const auto& m : members) {
      if (m[i] < truth[i]) ++rank;
    }
    ++hist[rank];
  }
  return hist;
}

double histogram_flatness(const std::vector<std::size_t>& histogram) {
  ESSEX_REQUIRE(!histogram.empty(), "empty histogram");
  double total = 0;
  for (auto c : histogram) total += static_cast<double>(c);
  if (total == 0) return 0.0;
  const double expected = total / static_cast<double>(histogram.size());
  double chi2 = 0;
  for (auto c : histogram) {
    const double d = static_cast<double>(c) - expected;
    chi2 += d * d / expected;
  }
  return chi2;
}

}  // namespace essex::esse
