// ESSEX: the error subspace (paper §3).
//
// ESSE represents the dominant forecast uncertainty as a rank-k
// factorisation of the error covariance, P ≈ E Λ Eᵀ, with E the
// orthonormal error modes (left singular vectors of the normalised
// ensemble anomaly matrix) and Λ = diag(σ²) their variances. The
// similarity coefficient between two subspaces is the paper's convergence
// test: grow the ensemble until the subspace stops rotating.
#pragma once

#include <cstddef>

#include "common/rng.hpp"
#include "linalg/matrix.hpp"

namespace essex::esse {

/// Rank-k error subspace: orthonormal modes with per-mode standard
/// deviations (singular values of the normalised anomaly matrix).
class ErrorSubspace {
 public:
  ErrorSubspace() = default;

  /// `modes` is m×k with orthonormal columns; `sigmas` holds the k
  /// non-negative singular values in descending order. Mode signs are
  /// free (P = E Λ Eᵀ either way) and are pinned to the canonical
  /// convention of la::canonicalize_column_signs on construction, so two
  /// mathematically-equal subspaces serialize to identical bytes.
  ErrorSubspace(la::Matrix modes, la::Vector sigmas);

  /// Build from an SVD of a normalised anomaly matrix, truncating to the
  /// smallest rank capturing `variance_fraction` of total variance (and
  /// at most `max_rank` modes).
  static ErrorSubspace from_svd(const la::Matrix& u, const la::Vector& s,
                                double variance_fraction = 0.99,
                                std::size_t max_rank = 0);

  /// The rank from_svd would retain for singular values `s` (descending):
  /// smallest k capturing `variance_fraction` of Σs², capped at
  /// `max_rank` (0 = uncapped), at least 1. Exposed so callers that build
  /// U incrementally can truncate *before* paying for the full U = A·V.
  static std::size_t truncation_rank(const la::Vector& s,
                                     double variance_fraction,
                                     std::size_t max_rank);

  std::size_t dim() const { return modes_.rows(); }
  std::size_t rank() const { return sigmas_.size(); }
  bool empty() const { return sigmas_.empty(); }

  const la::Matrix& modes() const { return modes_; }
  const la::Vector& sigmas() const { return sigmas_; }

  /// Total variance tr(P) = Σ σ².
  double total_variance() const;

  /// Fraction of this subspace's variance captured by its first k modes.
  double variance_fraction(std::size_t k) const;

  /// Truncate to at most k modes.
  ErrorSubspace truncated(std::size_t k) const;

  /// Coefficients of x in the subspace basis: Eᵀ x.
  la::Vector project(const la::Vector& x) const;

  /// Reconstruct E c from subspace coefficients.
  la::Vector expand(const la::Vector& coeffs) const;

  /// Marginal standard deviation of each state element:
  /// sqrt(diag(E Λ Eᵀ)).
  la::Vector marginal_stddev() const;

  /// Draw a random state-space sample with covariance E Λ Eᵀ.
  la::Vector sample(Rng& rng) const;

 private:
  la::Matrix modes_;  // m × k, orthonormal columns
  la::Vector sigmas_;  // k, descending
};

/// Weighted subspace similarity coefficient ρ ∈ [0, 1] following
/// Lermusiaux & Robinson (1999): 1 when the subspaces coincide mode-for-
/// mode with identical spectra, → 0 for orthogonal subspaces.
///
///   ρ(A,B) = Σ_{ij} λᴬᵢ λᴮⱼ (eᴬᵢ·eᴮⱼ)² / sqrt(Σ λᴬ² · Σ λᴮ²),
///
/// with λ = σ². Both subspaces must share the state dimension.
double subspace_similarity(const ErrorSubspace& a, const ErrorSubspace& b);

}  // namespace essex::esse
