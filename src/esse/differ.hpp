// ESSEX: the continuously-running "differ" (paper §4.1, Fig. 4).
//
// Ensemble members land in arbitrary order; the differ subtracts the
// central forecast from each, normalises by 1/sqrt(n-1) lazily, and keeps
// per-member bookkeeping (which perturbation index produced each column —
// the paper's fix for bottleneck 2). It is thread-safe so concurrent
// executor workers can push results while SVD snapshots are taken.
//
// Since PR 2 the differ is *incremental* end to end. Anomaly columns are
// append-only and individually immutable, and every absorbed member also
// carries the new border of the growing Gram matrix AᵀA — the dot
// products against all earlier columns, computed once at absorption time
// (O(m·k)) instead of at every convergence check (O(m·n²)). A check is
// then a small n×n symmetric eigensolve plus U = A·V over the retained
// modes only.
//
// The covariance "file" semantics of the paper (safe copy + alternating
// live pair) are modelled by view(): the caller receives a versioned,
// copy-free column-prefix view over the shared column storage — O(n)
// pointer copies, never an O(m·n) matrix copy — while the live store
// keeps growing. snapshot() materialises a view into the legacy dense
// SpreadSnapshot for consumers (smoother, verification) that want the
// full matrix.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_set>
#include <vector>

#include "common/thread_pool.hpp"
#include "esse/error_subspace.hpp"
#include "linalg/arena.hpp"
#include "linalg/matrix.hpp"
#include "linalg/svd.hpp"
#include "ocean/tiling.hpp"

namespace essex::telemetry {
class Sink;
}

namespace essex::esse {

/// A snapshot of the accumulated ensemble spread, normalised so that
/// A Aᵀ is the sample covariance estimate.
struct SpreadSnapshot {
  la::Matrix anomalies;             ///< m × n, already scaled by 1/√(n−1)
  std::vector<std::size_t> member_ids;  ///< column → perturbation index
};

/// One absorbed member: the unnormalised anomaly column plus the border
/// row of the Gram matrix linking it to every column absorbed before it
/// (gram_row[i] = aⱼ·aᵢ for arrival positions i ≤ j, so gram_row.back()
/// is the self-product). `arrival_index` is the column's position in the
/// differ's append-only storage — the key the cached borders are indexed
/// by. Both payloads are immutable once published; views share them
/// without copying.
///
/// The anomaly span points into the differ's 64-byte-aligned ColumnArena
/// (never freed before the arena dies), so a column handle is two
/// machine words; AnomalyView's `storage` pointer keeps the arena alive
/// for detached views.
struct AnomalyColumn {
  std::span<const double> anomaly;
  std::shared_ptr<const la::Vector> gram_row;
  std::size_t member_id = 0;
  std::size_t arrival_index = 0;
};

/// Versioned, copy-free column view over the differ's append-only column
/// storage — the in-process analogue of the paper's "safe file".
/// Copying a view copies n shared pointers, never the m×n payload, so
/// promoting one through a TripleBufferStore costs O(n).
///
/// Determinism contract (DESIGN.md §10): columns are ordered by
/// perturbation index (member_id ascending), NOT by arrival order, so
/// everything derived from a view — materialized anomaly matrices, the
/// assembled Gram, U = A·V products — depends only on *which* members it
/// holds, never on the order the task pool completed them in.
struct AnomalyView {
  std::vector<AnomalyColumn> columns;  ///< member_id-sorted, shared payloads
  std::shared_ptr<const la::ColumnArena> storage;  ///< keeps spans alive
  std::uint64_t version = 0;  ///< differ version the view was cut from
  std::size_t state_dim = 0;  ///< m

  std::size_t count() const { return columns.size(); }

  /// Materialise the normalised m×n anomaly matrix (1/√(n−1) scaling),
  /// columns in canonical (member_id) order.
  la::Matrix materialize() const;

  /// Assemble the normalised n×n Gram matrix AᵀA in canonical order from
  /// the cached border rows — no O(m·n²) product, just O(n²) lookups.
  /// Entry (i,j) is read from the border of whichever of the two columns
  /// arrived later, indexed by the earlier one's arrival position.
  la::Matrix gram() const;

  /// Restrict to the first `n` canonical columns (the n smallest member
  /// ids in the view) — O(n) pointer copies, shared payloads.
  AnomalyView prefix(std::size_t n) const;

  std::vector<std::size_t> member_ids() const;
};

/// Error subspace from a view via the cached-Gram method of snapshots:
/// eigensolve of view.gram(), truncation to `variance_fraction` /
/// `max_rank` (0 = no cap), then U = A·V over the retained modes only,
/// optionally spread over `pool`. Falls back to the dense SVD when the
/// ensemble is wider than the state (n > m), where the Gram trick buys
/// nothing. `sink` (nullable) receives `differ.*` counters and the
/// per-check `differ.subspace_s` latency histogram.
ErrorSubspace subspace_from_view(const AnomalyView& view,
                                 double variance_fraction = 0.99,
                                 std::size_t max_rank = 0,
                                 ThreadPool* pool = nullptr,
                                 telemetry::Sink* sink = nullptr);

/// Thread-safe accumulator of forecast anomalies about the central
/// forecast.
class Differ {
 public:
  /// `central` is the central (unperturbed) forecast the anomalies are
  /// taken about. With a `tiling` (whose packed size must match the
  /// central forecast) the column store is sharded by tile: every Gram
  /// border and self-product is the tile-major sharded reduction
  /// (la::dot_sharded) over the tiling's owned runs — a fixed shape set
  /// by the tiling alone, so digests stay thread-count- and
  /// arrival-order-invariant, and stay stable when the shards later
  /// move to per-node stores.
  explicit Differ(la::Vector central,
                  std::shared_ptr<const ocean::Tiling> tiling = nullptr);

  /// Attach a telemetry sink (nullable, not owned): gram-border and
  /// subspace-check counters land in it. Set before worker threads
  /// start; the pointer itself is not synchronised.
  void set_sink(telemetry::Sink* sink) { sink_ = sink; }

  /// Absorb the forecast of member `member_id`, computing the new Gram
  /// border against all stored anomalies (O(m·k), outside the lock —
  /// concurrent writers only serialise for the O(1) append). Any arrival
  /// order is accepted; duplicate ids are rejected. `weight` scales the
  /// stored anomaly column (the multilevel per-level pooling factor,
  /// DESIGN.md §15); the default 1.0 takes the exact single-level path.
  void add_member(std::size_t member_id, const la::Vector& forecast,
                  double weight = 1.0);

  /// Absorb a precomputed anomaly column as member `member_id` — the
  /// multilevel path for prolongated coarse-member anomalies, already
  /// scaled by their level's pooling weight. Shares add_member's
  /// absorption and catch-up-Gram machinery, so ordering, duplicate
  /// rejection and the determinism contract are identical.
  void add_anomaly(std::size_t member_id, const la::Vector& anomaly);

  /// Replace the forecast of an already-absorbed member (smoother-style
  /// rewrite of a past column). Every later column's cached Gram border
  /// references the old anomaly, so this is the one path that still pays
  /// a full O(m·n²) Gram rebuild (DESIGN.md §8).
  void rewrite_member(std::size_t member_id, const la::Vector& forecast);

  /// Number of members absorbed so far.
  std::size_t count() const;

  /// Largest c such that members with perturbation indices 0..c-1 have
  /// all been absorbed — the longest contiguous id prefix. This is the
  /// arrival-order-free progress measure the deterministic convergence
  /// schedule keys on: it advances identically for every schedule that
  /// completes the same members.
  std::size_t contiguous_count() const;

  /// Monotone version: bumped by every add_member / rewrite_member.
  std::uint64_t version() const;

  /// Cut a copy-free view over the first `prefix_cols` absorbed columns
  /// (0 = all columns currently absorbed), returned in canonical
  /// member_id order.
  AnomalyView view(std::size_t prefix_cols = 0) const;

  /// Cut a canonical view over exactly the members with perturbation
  /// indices 0..contiguous_count()-1, regardless of arrival order or of
  /// any higher-id members already absorbed. Two schedules that both
  /// reach contiguous_count() >= c produce bitwise-identical
  /// contiguous_view().prefix(c) payloads.
  AnomalyView contiguous_view() const;

  /// Materialise the normalised anomaly matrix (the dense "safe file").
  /// Requires count() >= 2.
  SpreadSnapshot snapshot() const;

  /// Compute the error subspace, truncated to `variance_fraction` /
  /// `max_rank` (0 = no cap). kGram (the default) uses the incremental
  /// cached-Gram path; kOneSidedJacobi forces the dense from-scratch
  /// decomposition (highest accuracy, full price).
  ErrorSubspace subspace(double variance_fraction = 0.99,
                         std::size_t max_rank = 0,
                         la::SvdMethod method = la::SvdMethod::kGram) const;

  /// Cached-Gram subspace with the U = A·V product spread over `pool` —
  /// the in-process analogue of the paper's shared-memory-parallel
  /// LAPACK SVD on the master node.
  ErrorSubspace subspace_parallel(ThreadPool& pool,
                                  double variance_fraction = 0.99,
                                  std::size_t max_rank = 0) const;

  const la::Vector& central() const { return central_; }

  /// The tile decomposition the column store is sharded by (null when
  /// untiled).
  const std::shared_ptr<const ocean::Tiling>& tiling() const {
    return tiling_;
  }

 private:
  /// Shared absorption path: publish the already-filled arena span as
  /// member `member_id`'s column, computing its Gram border via the
  /// catch-up loop. `computed` counts border dots for telemetry.
  void absorb(std::size_t member_id, std::span<double> anom);

  la::Vector central_;
  std::shared_ptr<const ocean::Tiling> tiling_;  // null = unsharded
  mutable std::mutex mu_;
  // Column payloads; never freed while any view's keepalive survives, so
  // a rewrite can abandon an old span under concurrent readers.
  std::shared_ptr<la::ColumnArena> arena_;
  std::vector<AnomalyColumn> columns_;  // append-only shared storage
  std::unordered_set<std::size_t> member_id_set_;
  std::size_t contiguous_count_ = 0;  // ids 0..contiguous_count_-1 absorbed
  std::uint64_t version_ = 0;
  std::uint64_t rewrite_epoch_ = 0;  // invalidates in-flight Gram borders
  telemetry::Sink* sink_ = nullptr;  // nullable, not owned
};

}  // namespace essex::esse
