// ESSEX: the continuously-running "differ" (paper §4.1, Fig. 4).
//
// Ensemble members land in arbitrary order; the differ subtracts the
// central forecast from each, normalises by 1/sqrt(n-1) lazily, and keeps
// per-member bookkeeping (which perturbation index produced each column —
// the paper's fix for bottleneck 2). It is thread-safe so concurrent
// executor workers can push results while SVD snapshots are taken.
//
// The covariance "file" semantics of the paper (safe copy + alternating
// live pair) are modelled by snapshot(): the caller receives an immutable
// copy of the anomaly matrix — the safe file — while the live matrix keeps
// growing.
#pragma once

#include <cstddef>
#include <mutex>
#include <optional>
#include <vector>

#include "common/thread_pool.hpp"
#include "esse/error_subspace.hpp"
#include "linalg/lowrank.hpp"
#include "linalg/matrix.hpp"
#include "linalg/svd.hpp"

namespace essex::esse {

/// A snapshot of the accumulated ensemble spread, normalised so that
/// A Aᵀ is the sample covariance estimate.
struct SpreadSnapshot {
  la::Matrix anomalies;             ///< m × n, already scaled by 1/√(n−1)
  std::vector<std::size_t> member_ids;  ///< column → perturbation index
};

/// Thread-safe accumulator of forecast anomalies about the central
/// forecast.
class Differ {
 public:
  /// `central` is the central (unperturbed) forecast the anomalies are
  /// taken about.
  explicit Differ(la::Vector central);

  /// Absorb the forecast of member `member_id`. Any arrival order is
  /// accepted; duplicate ids are rejected.
  void add_member(std::size_t member_id, const la::Vector& forecast);

  /// Number of members absorbed so far.
  std::size_t count() const;

  /// Copy out the normalised anomaly matrix (the "safe file" the SVD
  /// reads). Requires count() >= 2.
  SpreadSnapshot snapshot() const;

  /// Compute the error subspace from the current snapshot via thin SVD,
  /// truncated to `variance_fraction` / `max_rank` (0 = no cap).
  ErrorSubspace subspace(double variance_fraction = 0.99,
                         std::size_t max_rank = 0,
                         la::SvdMethod method = la::SvdMethod::kGram) const;

  /// Same, with the Gram products spread over `pool` — the in-process
  /// analogue of the paper's shared-memory-parallel LAPACK SVD on the
  /// master node.
  ErrorSubspace subspace_parallel(ThreadPool& pool,
                                  double variance_fraction = 0.99,
                                  std::size_t max_rank = 0) const;

  const la::Vector& central() const { return central_; }

 private:
  la::Vector central_;
  mutable std::mutex mu_;
  std::vector<la::Vector> anomalies_;  // unnormalised member − central
  std::vector<std::size_t> member_ids_;
};

}  // namespace essex::esse
