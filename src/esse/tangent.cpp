#include "esse/tangent.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "linalg/svd.hpp"

namespace essex::esse {

TangentForecast tangent_forecast(const ocean::OceanModel& model,
                                 const ocean::OceanState& initial,
                                 const ErrorSubspace& subspace,
                                 double t0_hours, double forecast_hours,
                                 double epsilon, std::size_t threads,
                                 double variance_fraction,
                                 std::size_t max_rank) {
  ESSEX_REQUIRE(!subspace.empty(), "need a non-empty subspace");
  ESSEX_REQUIRE(epsilon > 0, "perturbation scale must be positive");
  ESSEX_REQUIRE(forecast_hours > 0, "forecast length must be positive");
  const la::Vector packed = initial.pack();
  ESSEX_REQUIRE(packed.size() == subspace.dim(),
                "subspace does not match the state dimension");

  auto integrate = [&](const la::Vector& x0) {
    ocean::OceanState s(model.grid());
    s.unpack(x0, model.grid());
    model.run(s, t0_hours, forecast_hours, nullptr);
    return s.pack();
  };

  TangentForecast out;
  out.central_forecast = integrate(packed);
  const std::size_t k = subspace.rank();
  out.model_runs = k + 1;

  // Propagated, σ-scaled columns: (M(x̂+εσⱼeⱼ) − M(x̂))/ε ≈ σⱼ·M'eⱼ.
  la::Matrix propagated(subspace.dim(), k);
  auto run_mode = [&](std::size_t j) {
    la::Vector x0 = packed;
    const double scale = epsilon * subspace.sigmas()[j];
    if (scale <= 0) return;  // null mode propagates to nothing
    for (std::size_t i = 0; i < x0.size(); ++i)
      x0[i] += scale * subspace.modes()(i, j);
    const la::Vector xf = integrate(x0);
    for (std::size_t i = 0; i < x0.size(); ++i)
      propagated(i, j) = (xf[i] - out.central_forecast[i]) / epsilon;
  };

  if (threads <= 1) {
    for (std::size_t j = 0; j < k; ++j) run_mode(j);
  } else {
    ThreadPool pool(threads);
    for (std::size_t j = 0; j < k; ++j) {
      pool.submit([&run_mode, j] { run_mode(j); });
    }
    pool.wait_idle();
  }

  const la::ThinSvd svd = la::svd_thin(propagated, la::SvdMethod::kGram);
  out.forecast_subspace =
      ErrorSubspace::from_svd(svd.u, svd.s, variance_fraction, max_rank);
  return out;
}

}  // namespace essex::esse
