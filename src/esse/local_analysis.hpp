// ESSEX: the tiled, localized analysis engine (DESIGN.md §14).
//
// Domain localization in the LETKF tradition: every tile solves its own
// k×k subspace core against the observations within the Gaspari–Cohn
// support of its owned rectangle (noise inflated by 1/GC(d), so distant
// data loses influence smoothly), and the per-tile posteriors are
// blended across halos with the tiling's partition-of-unity weights.
// The blend happens in square-root form — Ŝ(cell) = Σ_u wgt_u·S_u with
// C_u = S_u·S_uᵀ — so the blended posterior covariance is a convex
// quadratic mix: it can never exceed the prior (analysis never hurts,
// per tile and globally), and at a radius large enough to cover the
// whole domain every tile solves the identical global problem and the
// blend collapses to it.
//
// Determinism: per-tile work is independent with fixed-shape reductions
// (canonical dot/ab_row/atb_update kernels), per-tile partials merge in
// tile-id order, and tiles write disjoint owned rows — so the result is
// bitwise independent of thread count and scheduling.
#pragma once

#include "common/thread_pool.hpp"
#include "esse/analysis.hpp"
#include "ocean/tiling.hpp"

namespace essex::esse {

/// Run the tiled update. `tiling` must match forecast.size(); `pool` is
/// optional (serial when null). Called through analyze() — exposed for
/// the localization tests and bench_local_analysis.
///
/// `method` selects the per-tile solver; only the self-contained filters
/// compose (kMultiModel resolves to a combined ObsSet inside analyze()
/// before reaching here). The blend machinery is method-agnostic: it
/// needs only C_t = S_t·S_tᵀ, which every solver's factor satisfies.
/// Note: for kEsrf the per-tile sweep runs in obs-index order of `obs` —
/// analyze() canonicalizes the set first; direct callers passing kEsrf
/// must do the same to keep results arrival-invariant.
AnalysisResult analyze_tiled(
    const la::Vector& forecast, const ErrorSubspace& subspace,
    const ObsSet& obs, const ocean::Tiling& tiling,
    const LocalizationParams& localization, ThreadPool* pool = nullptr,
    AnalysisMethod method = AnalysisMethod::kSubspaceKalman);

}  // namespace essex::esse
