// ESSEX: forecast verification and ensemble-calibration metrics.
//
// "A comprehensive prediction should include the reliability of estimated
// quantities" (paper §2). This module supplies the standard diagnostics a
// real-time system reports against withheld truth or observations: RMSE,
// bias, anomaly correlation, the spread–skill ratio (is the predicted
// uncertainty the right size?) and the rank histogram (is the ensemble
// statistically indistinguishable from the truth?).
#pragma once

#include <cstddef>
#include <vector>

#include "esse/error_subspace.hpp"
#include "linalg/matrix.hpp"

namespace essex::esse {

/// Point metrics of one estimate against truth.
struct SkillScore {
  double rmse = 0;
  double bias = 0;      ///< mean(estimate − truth)
  double anomaly_correlation = 0;  ///< about the given climatology
};

/// Compute RMSE/bias/AC of `estimate` vs `truth`, anomalies taken about
/// `climatology`. All vectors must share a length >= 2.
SkillScore skill(const la::Vector& estimate, const la::Vector& truth,
                 const la::Vector& climatology);

/// Spread–skill ratio: predicted ensemble stddev (RMS of the subspace's
/// marginal stddev) over actual RMSE. ≈1 for a calibrated system, <1
/// over-confident, >1 under-dispersive ensemble flagged the other way.
double spread_skill_ratio(const ErrorSubspace& subspace,
                          const la::Vector& estimate,
                          const la::Vector& truth);

/// Rank (Talagrand) histogram: for each of `n_probe` randomly probed
/// state components, the rank of the truth among the ensemble member
/// values. Flat ⇒ calibrated; U-shaped ⇒ under-dispersive.
/// `members` holds the packed member states (>= 2 members).
std::vector<std::size_t> rank_histogram(
    const std::vector<la::Vector>& members, const la::Vector& truth,
    std::size_t n_probe, std::uint64_t seed);

/// Chi-square statistic of a histogram against the uniform distribution
/// (a scalar summary for tests: small ⇒ flat).
double histogram_flatness(const std::vector<std::size_t>& histogram);

}  // namespace essex::esse
