// ESSEX: adaptive sampling on the error subspace (paper §7).
//
// "Another area where MTC would be most valuable is the intelligent
// coordination of autonomous ocean sampling networks. To achieve optimal
// and adaptive sampling, large-dimensional nonlinear stochastic
// optimizations ... can be required. Such complex systems are prime
// examples of MTC problems that can be combined with our uncertainty
// estimations."
//
// This module implements the canonical subspace formulation: given the
// forecast error subspace P ≈ E Λ Eᵀ and a catalogue of candidate
// observations, greedily pick the budget-limited subset that maximises
// the posterior trace reduction. Each candidate's benefit is evaluated
// in the k-dimensional subspace (a rank-1 information update), so
// scoring a candidate costs O(k²) regardless of the state dimension —
// which is what makes the "large ensemble of candidate plans" an MTC
// workload rather than a full-state one.
#pragma once

#include <cstddef>
#include <vector>

#include "esse/error_subspace.hpp"
#include "obs/observation.hpp"

namespace essex::esse {

/// The outcome of a greedy sampling optimisation.
struct SamplingPlan {
  std::vector<std::size_t> chosen;  ///< candidate indices, pick order
  double initial_trace = 0;         ///< tr(P) before any observation
  double final_trace = 0;           ///< tr(P) after the chosen set
  std::vector<double> trace_after;  ///< tr(P) after each successive pick
};

/// Greedily select up to `budget` candidates from `candidates` (its
/// observations define H rows and noise variances; their values are
/// ignored) to minimise the posterior error trace.
///
/// Requires a non-empty subspace, at least one candidate, budget >= 1.
SamplingPlan plan_adaptive_sampling(const ErrorSubspace& subspace,
                                    const obs::ObsOperator& candidates,
                                    std::size_t budget);

/// Expected trace reduction of assimilating a single candidate `index`
/// (no selection loop) — exposed for tests and ranking displays.
double candidate_trace_reduction(const ErrorSubspace& subspace,
                                 const obs::ObsOperator& candidates,
                                 std::size_t index);

}  // namespace essex::esse
