#include "esse/cycle.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/telemetry.hpp"
#include "common/thread_pool.hpp"
#include "ocean/hierarchy.hpp"

namespace essex::esse {

namespace {

/// Integrate one ensemble member from a packed initial condition.
la::Vector run_member(const ocean::OceanModel& model,
                      const la::Vector& packed_initial, double t0_hours,
                      double forecast_hours, bool stochastic,
                      std::uint64_t seed, std::size_t member_id) {
  ocean::OceanState state(model.grid());
  state.unpack(packed_initial, model.grid());
  if (stochastic) {
    // Stream offset keeps model-noise draws independent of the
    // perturbation draws for the same member id.
    Rng rng(seed ^ 0xA5A5A5A5ULL, member_id + 1);
    model.run(state, t0_hours, forecast_hours, &rng);
  } else {
    model.run(state, t0_hours, forecast_hours, nullptr);
  }
  return state.pack();
}

}  // namespace

la::Vector run_surrogate_forecast(const ocean::OceanModel& model,
                                  const ocean::OceanState& initial,
                                  double t0_hours, double forecast_hours,
                                  const AnalysisParams& analysis) {
  ESSEX_REQUIRE(analysis.surrogate_levels >= 2,
                "the multi-model surrogate needs levels >= 2");
  ESSEX_REQUIRE(analysis.surrogate_coarsen >= 2,
                "the multi-model surrogate needs a coarsening factor >= 2");
  const ocean::GridHierarchy hier(model.grid(), analysis.surrogate_levels,
                                  analysis.surrogate_coarsen);
  const std::size_t l = analysis.surrogate_levels - 1;
  const ocean::Grid3D& g = hier.grid(l);

  // Coarse companion model: same physics and forcing, climatology
  // restricted to the coarse grid (the MultilevelEnsemble recipe).
  ocean::OceanState clim(g);
  clim.unpack(hier.restrict_state(model.climatology().pack(), l), g);
  const ocean::OceanModel coarse(g, model.params(), model.forcing(), clim);

  ocean::OceanState st(g);
  st.unpack(hier.restrict_state(initial.pack(), l), g);
  coarse.run(st, t0_hours, forecast_hours, nullptr);

  la::Vector fine = hier.prolong_state(st.pack(), l);
  // The deliberate bias on top of the coarse truncation error: lets
  // tests and benches dial the surrogate's wrongness explicitly.
  if (analysis.surrogate_bias != 0.0)
    for (double& v : fine) v += analysis.surrogate_bias;
  return fine;
}

ForecastResult run_uncertainty_forecast(const ocean::OceanModel& model,
                                        const ocean::OceanState& initial,
                                        const ErrorSubspace& initial_subspace,
                                        double t0_hours,
                                        const CycleParams& params) {
  ESSEX_REQUIRE(params.forecast_hours > 0, "forecast length must be > 0");
  ESSEX_REQUIRE(params.check_interval >= 1, "check interval must be >= 1");
  const la::Vector packed_initial = initial.pack();
  ESSEX_REQUIRE(packed_initial.size() == initial_subspace.dim(),
                "initial subspace does not match the state dimension");

  // Central (unperturbed, deterministic) forecast.
  la::Vector central = run_member(model, packed_initial, t0_hours,
                                  params.forecast_hours, false,
                                  params.perturbation.seed, 0);

  PerturbationGenerator pert(initial_subspace, params.perturbation);
  // Localized cycles shard the differ's column store by the analysis
  // tiling, so the forecast-stage Gram reductions use the same fixed
  // per-tile shapes the tiled analysis does.
  std::shared_ptr<const ocean::Tiling> tiling;
  if (params.localization.enabled)
    tiling = std::make_shared<const ocean::Tiling>(model.grid(),
                                                   params.tiling);
  Differ differ(central, tiling);
  differ.set_sink(params.sink);  // differ.* cache counters + check latency
  ConvergenceTest conv(params.convergence);
  EnsembleSizeController sizer(params.ensemble);

  ForecastResult out;
  std::size_t next_id = 0;

  auto run_block = [&](std::size_t count) {
    const std::size_t first = next_id;
    next_id += count;
    if (params.threads <= 1) {
      for (std::size_t id = first; id < first + count; ++id) {
        la::Vector x0 = pert.perturbed_state(packed_initial, id);
        la::Vector xf = run_member(model, x0, t0_hours, params.forecast_hours,
                                   params.stochastic_members,
                                   params.perturbation.seed, id);
        differ.add_member(id, xf);
      }
      return;
    }
    ThreadPool pool(params.threads);
    for (std::size_t id = first; id < first + count; ++id) {
      pool.submit([&, id] {
        la::Vector x0 = pert.perturbed_state(packed_initial, id);
        la::Vector xf = run_member(model, x0, t0_hours, params.forecast_hours,
                                   params.stochastic_members,
                                   params.perturbation.seed, id);
        differ.add_member(id, xf);
      });
    }
    pool.wait_idle();
  };

  // Staged growth loop: run blocks of check_interval members up to the
  // current target; test convergence after each block.
  for (;;) {
    while (differ.count() < sizer.target()) {
      const std::size_t block =
          std::min(params.check_interval, sizer.target() - differ.count());
      run_block(block);
      if (differ.count() >= 2) {
        ErrorSubspace sub = differ.subspace(params.variance_fraction,
                                            params.max_rank);
        const auto rho = conv.update(sub, differ.count());
        if (params.sink) {
          // Convergence samples as a metric stream: t is the ensemble
          // size the estimate used, value the similarity coefficient ρ.
          params.sink->count("esse.convergence_checks");
          if (rho) {
            params.sink->event("esse.convergence",
                               static_cast<double>(differ.count()), *rho);
            params.sink->observe("esse.similarity", *rho);
          }
        }
        if (conv.converged()) break;
      }
    }
    if (conv.converged() || sizer.at_max()) break;
    sizer.grow();
  }

  out.central_forecast = std::move(central);
  out.forecast_subspace =
      differ.subspace(params.variance_fraction, params.max_rank);
  out.members_run = differ.count();
  out.converged = conv.converged();
  out.convergence_history = conv.history();
  if (params.analysis.method == AnalysisMethod::kMultiModel) {
    out.surrogate_forecast = run_surrogate_forecast(
        model, initial, t0_hours, params.forecast_hours, params.analysis);
    if (params.sink) params.sink->count("esse.surrogate_runs");
  }
  if (params.sink) {
    params.sink->count("esse.members_run",
                       static_cast<double>(out.members_run));
    params.sink->gauge_set("esse.converged", out.converged ? 1.0 : 0.0);
    params.sink->gauge_set("esse.subspace_rank",
                           static_cast<double>(out.forecast_subspace.rank()));
  }
  return out;
}

CycleResult run_assimilation_cycle(const ocean::OceanModel& model,
                                   const ocean::OceanState& initial,
                                   const ErrorSubspace& initial_subspace,
                                   double t0_hours,
                                   const obs::ObsOperator& h,
                                   const CycleParams& params) {
  CycleResult out;
  out.forecast = run_uncertainty_forecast(model, initial, initial_subspace,
                                          t0_hours, params);
  // Graceful degradation has a floor: an analysis against a subspace
  // estimated from too few surviving members would be noise.
  ESSEX_REQUIRE(out.forecast.members_run >= params.min_analysis_members,
                "analysis refused: fewer surviving members than the "
                "min_analysis_members floor");
  AnalysisOptions options;
  options.localization = params.localization;
  options.tiling = params.tiling;
  options.threads = params.threads;
  options.grid = &model.grid();
  options.method = params.analysis.method;
  options.sink = params.sink;
  if (params.analysis.method == AnalysisMethod::kMultiModel) {
    ESSEX_REQUIRE(out.forecast.surrogate_forecast.has_value(),
                  "multi-model analysis needs the surrogate forecast");
    options.multi_model.surrogate = &*out.forecast.surrogate_forecast;
    options.multi_model.stride = params.analysis.pseudo_obs_stride;
    options.multi_model.variance_inflation =
        params.analysis.pseudo_variance_inflation;
    options.multi_model.variance_floor =
        params.analysis.pseudo_variance_floor;
  }
  out.analysis = analyze(out.forecast.central_forecast,
                         out.forecast.forecast_subspace,
                         ObsSet::from_operator(h), options);
  return out;
}

ErrorSubspace bootstrap_subspace(const ocean::OceanModel& model,
                                 const ocean::OceanState& initial,
                                 double t0_hours, double spinup_hours,
                                 std::size_t n_samples,
                                 double variance_fraction,
                                 std::size_t max_rank, std::uint64_t seed,
                                 std::size_t threads) {
  ESSEX_REQUIRE(n_samples >= 2, "bootstrap needs at least two samples");
  const la::Vector packed = initial.pack();
  // Deterministic reference run.
  la::Vector central =
      run_member(model, packed, t0_hours, spinup_hours, false, seed, 0);
  Differ differ(central);

  auto one = [&](std::size_t id) {
    la::Vector xf =
        run_member(model, packed, t0_hours, spinup_hours, true, seed, id);
    differ.add_member(id, xf);
  };

  if (threads <= 1) {
    for (std::size_t id = 0; id < n_samples; ++id) one(id);
  } else {
    ThreadPool pool(threads);
    for (std::size_t id = 0; id < n_samples; ++id) {
      pool.submit([&, id] { one(id); });
    }
    pool.wait_idle();
  }
  return differ.subspace(variance_fraction, max_rank);
}

}  // namespace essex::esse
