// ESSEX: canonical forecast-product serialization for the determinism
// harness (DESIGN.md §10).
//
// The bit-reproducibility contract covers the *scientific* outputs of a
// seeded forecast: the central state, the error subspace (serialized in
// the same ESXF byte layout the product files use), the derived std-dev
// map, the convergence history and the canonical member count. The MTC
// accounting (result.mtc) is deliberately excluded — wall-clock timings,
// retry counts under real faults and store promotion counts are
// execution records, not reproducible science.
#pragma once

#include <string>

#include "esse/cycle.hpp"

namespace essex::esse {

/// Serialize the reproducible fields of a forecast into a canonical byte
/// string: two runs produce identical bytes iff they produced identical
/// science.
std::string serialize_forecast_product(const ForecastResult& result);

/// Lowercase-hex SHA-256 of serialize_forecast_product(result) — the
/// value the golden replay tests compare and ctest -L determinism pins.
/// Multi-model forecasts append their surrogate as a trailing block;
/// results without one serialize to exactly the historical bytes.
std::string forecast_digest(const ForecastResult& result);

/// Serialize the reproducible fields of an analysis: posterior state and
/// subspace (ESXF bytes + std-dev map) plus the four scalar diagnostics.
/// The per-method golden digests of tests/golden/analysis_methods.sha256
/// are SHA-256 of these bytes.
std::string serialize_analysis_product(const AnalysisResult& result);

/// Lowercase-hex SHA-256 of serialize_analysis_product(result).
std::string analysis_digest(const AnalysisResult& result);

}  // namespace essex::esse
