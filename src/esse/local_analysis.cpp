#include "esse/local_analysis.hpp"

#include <algorithm>
#include <cmath>
#include <future>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "linalg/arena.hpp"
#include "linalg/eig_sym.hpp"
#include "linalg/simd.hpp"
#include "linalg/stats.hpp"

namespace essex::esse {

namespace {

/// Dispatch f(t) over every tile; each call owns disjoint output slots,
/// so scheduling cannot change the result.
template <typename F>
void for_each_tile(std::size_t tiles, ThreadPool* pool, const F& f) {
  if (pool == nullptr || pool->thread_count() <= 1 || tiles <= 1) {
    for (std::size_t t = 0; t < tiles; ++t) f(t);
    return;
  }
  std::vector<std::future<void>> futs;
  futs.reserve(tiles);
  for (std::size_t t = 0; t < tiles; ++t)
    futs.push_back(pool->submit([&f, t] { f(t); }));
  for (auto& fut : futs) fut.get();
}

/// One tile's local solve: the increment coefficients w_t and the
/// square-root posterior core S_t (C_t = S_t·S_tᵀ).
struct TileSolve {
  la::Vector w;
  la::Matrix smat;
  std::size_t obs_used = 0;
};

}  // namespace

AnalysisResult analyze_tiled(const la::Vector& forecast,
                             const ErrorSubspace& subspace, const ObsSet& obs,
                             const ocean::Tiling& tiling,
                             const LocalizationParams& localization,
                             ThreadPool* pool, AnalysisMethod method) {
  ESSEX_REQUIRE(method == AnalysisMethod::kSubspaceKalman ||
                    method == AnalysisMethod::kEtkf ||
                    method == AnalysisMethod::kEsrf,
                "analyze_tiled handles only self-contained methods");
  ESSEX_REQUIRE(!subspace.empty(), "analysis needs a non-empty subspace");
  ESSEX_REQUIRE(!obs.empty(), "analysis needs at least one observation");
  ESSEX_REQUIRE(forecast.size() == subspace.dim(),
                "forecast dimension does not match the subspace");
  ESSEX_REQUIRE(tiling.packed_size() == forecast.size(),
                "tiling does not match the packed state");
  ESSEX_REQUIRE(localization.radius_km > 0.0,
                "localization radius must be positive");

  const std::size_t p = obs.size();
  const std::size_t k = subspace.rank();
  const std::size_t m = forecast.size();
  const std::size_t tiles = tiling.tile_count();
  const la::Matrix& modes = subspace.modes();
  const la::Vector& sig = subspace.sigmas();
  const auto& kern = la::simd::kernels();

  // Observation-space precompute, shared by every tile: HE, the
  // innovation and R's diagonal (stencil-order accumulation, as in the
  // global path).
  la::Matrix he(p, k);
  for (std::size_t i = 0; i < p; ++i)
    for (std::size_t j = 0; j < k; ++j)
      he(i, j) = obs.apply_mode(i, modes, j);
  const la::Vector d = obs.innovations(forecast);
  la::Vector rvar(p);
  for (std::size_t i = 0; i < p; ++i) {
    rvar[i] = obs.entry(i).variance;
    ESSEX_REQUIRE(rvar[i] > 0.0,
                  "observation noise variance must be positive");
  }

  // ---- Phase 1: independent per-tile k×k solves ------------------------
  // Each tile sees the observations within the Gaspari–Cohn support of
  // its owned rectangle, with R inflated to R/GC(d): distant data keeps
  // its direction but loses weight smoothly, reaching zero at 2·radius.
  std::vector<TileSolve> solves(tiles);
  const double radius = localization.radius_km;
  for_each_tile(tiles, pool, [&](std::size_t t) {
    TileSolve& ts = solves[t];
    std::vector<std::pair<std::size_t, double>> local;  // (obs, taper)
    for (std::size_t i = 0; i < p; ++i) {
      const ObsEntry& e = obs.entry(i);
      if (!e.positioned) {
        local.emplace_back(i, 1.0);
        continue;
      }
      const double taper =
          gaspari_cohn(tiling.distance_km(t, e.x_km, e.y_km), radius);
      if (taper > 0.0) local.emplace_back(i, taper);
    }
    ts.obs_used = local.size();
    if (local.empty()) {
      // Nothing observed near this tile: the posterior is the prior.
      ts.w = la::Vector(k, 0.0);
      ts.smat = la::Matrix(k, k);
      for (std::size_t j = 0; j < k; ++j) ts.smat(j, j) = sig[j];
      return;
    }

    if (method == AnalysisMethod::kEsrf) {
      // Serial Potter sweep over the tapered local set, in obs-index
      // order (canonical by the time analyze() hands the set over). The
      // factor satisfies W·Wᵀ = C_t, which is all the blend needs.
      detail::esrf_solve(sig, he, d, rvar, local, ts.w, ts.smat);
      return;
    }

    // G_t = HEᵀ R_loc⁻¹ HE and rhs_t = HEᵀ R_loc⁻¹ d over the local
    // observations, accumulated row by row in obs-index order.
    la::Matrix g(k, k);
    la::Vector rhs(k, 0.0);
    la::Vector scaled(k);
    for (const auto& [i, taper] : local) {
      const double* row = he.data().data() + i * k;
      const double ir = taper / rvar[i];
      for (std::size_t a = 0; a < k; ++a) scaled[a] = row[a] * ir;
      kern.atb_update(scaled.data(), row, g.data().data(), 1, k, k);
      kern.axpy(d[i], scaled.data(), rhs.data(), k);
    }
    // The outer-product accumulation is symmetric up to rounding; make
    // it exactly symmetric for the eigensolver.
    for (std::size_t a = 0; a < k; ++a)
      for (std::size_t b = a + 1; b < k; ++b) g(b, a) = g(a, b);

    if (method == AnalysisMethod::kEtkf) {
      // The transform solve is per-tile local state only — exactly as
      // tile-parallel as the Kalman core, and its symmetric-square-root
      // factor is canonical without sign fixing.
      detail::etkf_solve(sig, g, rhs, ts.w, ts.smat);
      return;
    }

    la::Matrix cmat = detail::posterior_core(sig, g);
    ts.w = la::matvec(cmat, rhs);

    // Square-root factor S_t = V·Λ̂^{1/2} with canonical column signs,
    // so neighbouring tiles with near-identical cores produce
    // near-identical factors and the halo blend cannot cancel them.
    la::EigSym eig = la::eig_sym(cmat);
    la::canonicalize_column_signs(eig.eigenvectors);
    ts.smat = la::Matrix(k, k);
    for (std::size_t j = 0; j < k; ++j) {
      const double s = std::sqrt(std::max(eig.eigenvalues[j], 0.0));
      for (std::size_t a = 0; a < k; ++a)
        ts.smat(a, j) = eig.eigenvectors(a, j) * s;
    }
  });

  // ---- Phase 2: blend, update the mean, build the W shards -------------
  // Per owned cell: the partition-of-unity blend of the covering tiles'
  // w_u and S_u, then per packed row i the mean increment e_i·ŵ and the
  // posterior square-root row W(i,:) = e_i·Ŝ. W is sharded by tile into
  // a ColumnArena — each tile owns one contiguous block, written (and
  // later re-read) cell-major — and each tile accumulates its partial
  // Gram G_t = W_tᵀ·W_t for the method-of-snapshots eigensolve.
  la::Vector xa = forecast;
  la::ColumnArena warena;
  std::vector<std::span<double>> wshard(tiles);
  for (std::size_t t = 0; t < tiles; ++t)
    wshard[t] = warena.allocate(tiling.owned_points(t) * k);
  std::vector<la::Matrix> gpart(tiles, la::Matrix(k, k));

  const std::size_t nz = tiling.nz();
  for_each_tile(tiles, pool, [&](std::size_t t) {
    const ocean::TileRect& r = tiling.tile(t);
    la::Vector wbar(k), sbar(k * k);
    double* shard = wshard[t].data();
    la::Matrix& gt = gpart[t];
    std::size_t row = 0;
    for (std::size_t iy = r.y0; iy < r.y1; ++iy) {
      for (std::size_t ix = r.x0; ix < r.x1; ++ix) {
        const auto cov = tiling.cover(ix, iy);
        std::fill(wbar.begin(), wbar.end(), 0.0);
        std::fill(sbar.begin(), sbar.end(), 0.0);
        for (const auto& [u, wgt] : cov) {
          kern.axpy(wgt, solves[u].w.data(), wbar.data(), k);
          kern.axpy(wgt, solves[u].smat.data().data(), sbar.data(), k * k);
        }
        const auto emit = [&](std::size_t idx) {
          const double* e = modes.data().data() + idx * k;
          xa[idx] += kern.dot(e, wbar.data(), k);
          double* wr = shard + row * k;
          kern.ab_row(e, sbar.data(), wr, k, k);
          kern.atb_update(wr, wr, gt.data().data(), 1, k, k);
          ++row;
        };
        for (std::size_t var = 0; var < 4; ++var)
          for (std::size_t iz = 0; iz < nz; ++iz)
            emit(tiling.var_index(var, ix, iy, iz));
        emit(tiling.ssh_index(ix, iy));
      }
    }
  });

  // ---- Phase 3: posterior subspace from the sharded Gram ---------------
  // G = Σ_t G_t in tile-id order (the fixed merge shape of the
  // determinism contract), one k×k eigensolve, then each tile writes its
  // owned rows of U = W·V·Λ̂^{-1/2}.
  la::Matrix gram(k, k);
  for (std::size_t t = 0; t < tiles; ++t) {
    const double* src = gpart[t].data().data();
    double* dst = gram.data().data();
    for (std::size_t i = 0; i < k * k; ++i) dst[i] += src[i];
  }
  la::EigSym eig = la::eig_sym(gram);
  const std::size_t keep = detail::kept_rank(eig.eigenvalues);
  la::Vector post_sig(keep);
  la::Vector inv_sig(keep);
  for (std::size_t j = 0; j < keep; ++j) {
    post_sig[j] = std::sqrt(std::max(eig.eigenvalues[j], 0.0));
    inv_sig[j] = post_sig[j] > 0.0 ? 1.0 / post_sig[j] : 0.0;
  }
  const la::Matrix vk = eig.eigenvectors.first_cols(keep);

  la::Matrix post_modes(m, keep);
  for_each_tile(tiles, pool, [&](std::size_t t) {
    const ocean::TileRect& r = tiling.tile(t);
    const double* shard = wshard[t].data();
    std::size_t row = 0;
    for (std::size_t iy = r.y0; iy < r.y1; ++iy) {
      for (std::size_t ix = r.x0; ix < r.x1; ++ix) {
        const auto emit = [&](std::size_t idx) {
          const double* wr = shard + row * k;
          double* urow = post_modes.data().data() + idx * keep;
          kern.ab_row(wr, vk.data().data(), urow, k, keep);
          for (std::size_t j = 0; j < keep; ++j) urow[j] *= inv_sig[j];
          ++row;
        };
        for (std::size_t var = 0; var < 4; ++var)
          for (std::size_t iz = 0; iz < nz; ++iz)
            emit(tiling.var_index(var, ix, iy, iz));
        emit(tiling.ssh_index(ix, iy));
      }
    }
  });

  AnalysisResult out;
  out.posterior_state = std::move(xa);
  out.posterior_subspace =
      ErrorSubspace(std::move(post_modes), std::move(post_sig));
  out.prior_innovation_rms = la::rms(d);
  out.posterior_innovation_rms =
      la::rms(obs.innovations(out.posterior_state));
  out.prior_trace = subspace.total_variance();
  out.posterior_trace = out.posterior_subspace.total_variance();
  return out;
}

}  // namespace essex::esse
