#include "esse/perturbation.hpp"

#include "common/error.hpp"
#include "common/rng.hpp"

namespace essex::esse {

PerturbationGenerator::PerturbationGenerator(const ErrorSubspace& subspace,
                                             Params params)
    : subspace_(subspace), params_(params) {
  ESSEX_REQUIRE(!subspace.empty(),
                "perturbation generator needs a non-empty subspace");
  ESSEX_REQUIRE(params.white_noise >= 0.0,
                "white noise amplitude must be non-negative");
}

la::Vector PerturbationGenerator::perturbation(std::size_t index) const {
  // Stream = member index + 1 so index 0 differs from the base stream.
  Rng rng(params_.seed, index + 1);
  la::Vector coeffs(subspace_.rank());
  for (std::size_t j = 0; j < coeffs.size(); ++j) {
    coeffs[j] = params_.mode_scale * subspace_.sigmas()[j] * rng.normal();
  }
  la::Vector p = subspace_.expand(coeffs);
  if (params_.white_noise > 0.0) {
    for (auto& x : p) x += params_.white_noise * rng.normal();
  }
  return p;
}

la::Vector PerturbationGenerator::perturbed_state(const la::Vector& central,
                                                  std::size_t index) const {
  ESSEX_REQUIRE(central.size() == subspace_.dim(),
                "central state dimension mismatch");
  la::Vector x = central;
  la::Vector p = perturbation(index);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] += p[i];
  return x;
}

}  // namespace essex::esse
