// ESSEX: initial-condition perturbations (the paper's "pert" stage).
//
// Member i's initial state is the central estimate plus a randomly
// weighted combination of the error modes, plus white noise "in part to
// represent the errors truncated by the error subspace" (paper §6).
// Draws are keyed by the perturbation index so the pool can execute
// members in any order and still reproduce identical fields.
#pragma once

#include <cstddef>

#include "esse/error_subspace.hpp"
#include "linalg/matrix.hpp"

namespace essex::esse {

/// Generator of reproducible, indexed initial-condition perturbations.
class PerturbationGenerator {
 public:
  struct Params {
    double mode_scale = 1.0;   ///< scaling of the subspace draw
    double white_noise = 0.0;  ///< stddev of the truncation-error noise
    std::uint64_t seed = 42;   ///< base seed; member i uses stream i
  };

  PerturbationGenerator(const ErrorSubspace& subspace, Params params);

  /// The perturbation (not the full state) for member `index`.
  la::Vector perturbation(std::size_t index) const;

  /// central + perturbation(index).
  la::Vector perturbed_state(const la::Vector& central,
                             std::size_t index) const;

  const Params& params() const { return params_; }

 private:
  const ErrorSubspace& subspace_;
  Params params_;
};

}  // namespace essex::esse
