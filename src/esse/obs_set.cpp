#include "esse/obs_set.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace essex::esse {

namespace {

/// Three-way exact comparison of entry content. Every field participates
/// (bit-for-bit on the doubles), so the induced order is total up to
/// fully-identical entries — which commute under any serial update.
int compare_entries(const ObsEntry& a, const ObsEntry& b) {
  const auto cmp = [](double x, double y) {
    return x < y ? -1 : (x > y ? 1 : 0);
  };
  if (a.stencil.size() != b.stencil.size())
    return a.stencil.size() < b.stencil.size() ? -1 : 1;
  for (std::size_t j = 0; j < a.stencil.size(); ++j) {
    if (a.stencil[j].first != b.stencil[j].first)
      return a.stencil[j].first < b.stencil[j].first ? -1 : 1;
    if (int c = cmp(a.stencil[j].second, b.stencil[j].second)) return c;
  }
  if (int c = cmp(a.value, b.value)) return c;
  if (int c = cmp(a.variance, b.variance)) return c;
  if (a.positioned != b.positioned) return a.positioned ? 1 : -1;
  if (int c = cmp(a.x_km, b.x_km)) return c;
  return cmp(a.y_km, b.y_km);
}

}  // namespace

ObsSet canonical_obs_order(const ObsSet& obs) {
  std::vector<ObsEntry> entries = obs.entries();
  std::stable_sort(entries.begin(), entries.end(),
                   [](const ObsEntry& a, const ObsEntry& b) {
                     return compare_entries(a, b) < 0;
                   });
  return ObsSet(std::move(entries));
}

ObsSet ObsSet::from_operator(const obs::ObsOperator& h) {
  std::vector<ObsEntry> entries;
  entries.reserve(h.count());
  for (std::size_t i = 0; i < h.count(); ++i) {
    const obs::Observation& ob = h.observations()[i];
    ObsEntry e;
    e.stencil = h.stencil_entries(i);
    e.value = ob.value;
    e.variance = ob.noise_std * ob.noise_std;
    e.positioned = true;
    e.x_km = ob.x_km;
    e.y_km = ob.y_km;
    entries.push_back(std::move(e));
  }
  return ObsSet(std::move(entries));
}

ObsSet ObsSet::from_linear(const std::vector<LinearObservation>& obs) {
  std::vector<ObsEntry> entries;
  entries.reserve(obs.size());
  for (const LinearObservation& ob : obs) {
    ObsEntry e;
    e.stencil = ob.stencil;
    e.value = ob.value;
    e.variance = ob.variance;
    entries.push_back(std::move(e));
  }
  return ObsSet(std::move(entries));
}

double ObsSet::apply_entry(std::size_t i, const la::Vector& x) const {
  double s = 0.0;
  for (const auto& [idx, w] : entries_[i].stencil) {
    ESSEX_REQUIRE(idx < x.size(), "stencil index out of range");
    s += w * x[idx];
  }
  return s;
}

double ObsSet::apply_mode(std::size_t i, const la::Matrix& modes,
                          std::size_t col) const {
  double s = 0.0;
  for (const auto& [idx, w] : entries_[i].stencil) {
    ESSEX_REQUIRE(idx < modes.rows(), "stencil index out of range");
    s += w * modes(idx, col);
  }
  return s;
}

la::Vector ObsSet::innovations(const la::Vector& x) const {
  la::Vector d(entries_.size());
  for (std::size_t i = 0; i < entries_.size(); ++i)
    d[i] = entries_[i].value - apply_entry(i, x);
  return d;
}

}  // namespace essex::esse
