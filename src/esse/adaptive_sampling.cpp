#include "esse/adaptive_sampling.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace essex::esse {

namespace {

/// Project every candidate's H row into the subspace: q_i = Eᵀ hᵢ.
/// Rows of the returned matrix are the q vectors (n_candidates × k).
la::Matrix candidate_projections(const ErrorSubspace& subspace,
                                 const obs::ObsOperator& candidates) {
  const std::size_t k = subspace.rank();
  const std::size_t n = candidates.count();
  la::Matrix q(n, k);
  for (std::size_t j = 0; j < k; ++j) {
    const la::Vector hj = candidates.apply_mode(subspace.modes(), j);
    for (std::size_t i = 0; i < n; ++i) q(i, j) = hj[i];
  }
  return q;
}

/// Trace reduction of a rank-1 update of the subspace covariance C by a
/// scalar observation with projection q and noise variance r:
/// Δtr = ‖C q‖² / (qᵀ C q + r).
double rank1_gain(const la::Matrix& c, const la::Vector& q, double r) {
  const la::Vector cq = la::matvec(c, q);
  const double denom = la::dot(q, cq) + r;
  if (denom <= 0) return 0.0;
  return la::dot(cq, cq) / denom;
}

/// Apply the rank-1 covariance update C ← C − (Cq)(Cq)ᵀ/(qᵀCq + r).
void rank1_update(la::Matrix& c, const la::Vector& q, double r) {
  const la::Vector cq = la::matvec(c, q);
  const double denom = la::dot(q, cq) + r;
  ESSEX_ASSERT(denom > 0, "degenerate observation in rank-1 update");
  for (std::size_t a = 0; a < c.rows(); ++a)
    for (std::size_t b = 0; b < c.cols(); ++b)
      c(a, b) -= cq[a] * cq[b] / denom;
}

la::Matrix initial_core(const ErrorSubspace& subspace) {
  const std::size_t k = subspace.rank();
  la::Matrix c(k, k);
  for (std::size_t j = 0; j < k; ++j)
    c(j, j) = subspace.sigmas()[j] * subspace.sigmas()[j];
  return c;
}

double trace(const la::Matrix& c) {
  double t = 0;
  for (std::size_t j = 0; j < c.rows(); ++j) t += c(j, j);
  return t;
}

}  // namespace

double candidate_trace_reduction(const ErrorSubspace& subspace,
                                 const obs::ObsOperator& candidates,
                                 std::size_t index) {
  ESSEX_REQUIRE(!subspace.empty(), "need a non-empty subspace");
  ESSEX_REQUIRE(index < candidates.count(), "candidate index out of range");
  const la::Matrix q = candidate_projections(subspace, candidates);
  const la::Matrix c = initial_core(subspace);
  return rank1_gain(c, q.row(index),
                    candidates.noise_variances()[index]);
}

SamplingPlan plan_adaptive_sampling(const ErrorSubspace& subspace,
                                    const obs::ObsOperator& candidates,
                                    std::size_t budget) {
  ESSEX_REQUIRE(!subspace.empty(), "need a non-empty subspace");
  ESSEX_REQUIRE(candidates.count() > 0, "need at least one candidate");
  ESSEX_REQUIRE(budget >= 1, "budget must be at least 1");

  const std::size_t n = candidates.count();
  const la::Matrix q = candidate_projections(subspace, candidates);
  const la::Vector rvar = candidates.noise_variances();

  la::Matrix c = initial_core(subspace);
  SamplingPlan plan;
  plan.initial_trace = trace(c);

  std::vector<bool> used(n, false);
  for (std::size_t pick = 0; pick < std::min(budget, n); ++pick) {
    double best_gain = 0;
    std::size_t best = n;
    for (std::size_t i = 0; i < n; ++i) {
      if (used[i]) continue;
      const double gain = rank1_gain(c, q.row(i), rvar[i]);
      if (gain > best_gain) {
        best_gain = gain;
        best = i;
      }
    }
    if (best == n || best_gain <= 1e-15 * plan.initial_trace) break;
    used[best] = true;
    rank1_update(c, q.row(best), rvar[best]);
    plan.chosen.push_back(best);
    plan.trace_after.push_back(trace(c));
  }
  plan.final_trace = plan.trace_after.empty() ? plan.initial_trace
                                              : plan.trace_after.back();
  return plan;
}

}  // namespace essex::esse
