#include "esse/error_subspace.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace essex::esse {

ErrorSubspace::ErrorSubspace(la::Matrix modes, la::Vector sigmas)
    : modes_(std::move(modes)), sigmas_(std::move(sigmas)) {
  ESSEX_REQUIRE(modes_.cols() == sigmas_.size(),
                "mode count must match sigma count");
  for (std::size_t i = 0; i < sigmas_.size(); ++i) {
    ESSEX_REQUIRE(sigmas_[i] >= 0.0, "sigmas must be non-negative");
    if (i > 0) {
      ESSEX_REQUIRE(sigmas_[i] <= sigmas_[i - 1] * (1.0 + 1e-12),
                    "sigmas must be descending");
    }
  }
  // P = E Λ Eᵀ is invariant under per-mode sign flips, so every producer
  // (SVD, eigensolve, analysis update, file load) funnels through one
  // canonical convention here. This is what keeps serialized subspaces —
  // and the convergence coefficient's inputs — bit-stable across runs.
  la::canonicalize_column_signs(modes_);
}

std::size_t ErrorSubspace::truncation_rank(const la::Vector& s,
                                           double variance_fraction,
                                           std::size_t max_rank) {
  ESSEX_REQUIRE(variance_fraction > 0.0 && variance_fraction <= 1.0,
                "variance fraction must lie in (0,1]");
  double total = 0.0;
  for (double sv : s) total += sv * sv;
  std::size_t k = 0;
  double acc = 0.0;
  while (k < s.size() && (total == 0.0 ? k == 0 : acc < variance_fraction * total)) {
    acc += s[k] * s[k];
    ++k;
  }
  if (max_rank > 0) k = std::min(k, max_rank);
  k = std::max<std::size_t>(k, 1);
  k = std::min(k, s.size());
  return k;
}

ErrorSubspace ErrorSubspace::from_svd(const la::Matrix& u, const la::Vector& s,
                                      double variance_fraction,
                                      std::size_t max_rank) {
  ESSEX_REQUIRE(u.cols() == s.size(), "SVD factor shape mismatch");
  const std::size_t k = truncation_rank(s, variance_fraction, max_rank);
  la::Vector sig(s.begin(), s.begin() + static_cast<std::ptrdiff_t>(k));
  return ErrorSubspace(u.first_cols(k), std::move(sig));
}

double ErrorSubspace::total_variance() const {
  double t = 0.0;
  for (double s : sigmas_) t += s * s;
  return t;
}

double ErrorSubspace::variance_fraction(std::size_t k) const {
  const double total = total_variance();
  if (total == 0.0) return 1.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < std::min(k, sigmas_.size()); ++i)
    acc += sigmas_[i] * sigmas_[i];
  return acc / total;
}

ErrorSubspace ErrorSubspace::truncated(std::size_t k) const {
  if (k >= rank()) return *this;
  la::Vector sig(sigmas_.begin(), sigmas_.begin() + static_cast<std::ptrdiff_t>(k));
  return ErrorSubspace(modes_.first_cols(k), std::move(sig));
}

la::Vector ErrorSubspace::project(const la::Vector& x) const {
  ESSEX_REQUIRE(x.size() == dim(), "project: dimension mismatch");
  return la::matvec_t(modes_, x);
}

la::Vector ErrorSubspace::expand(const la::Vector& coeffs) const {
  ESSEX_REQUIRE(coeffs.size() == rank(), "expand: rank mismatch");
  return la::matvec(modes_, coeffs);
}

la::Vector ErrorSubspace::marginal_stddev() const {
  la::Vector sd(dim(), 0.0);
  for (std::size_t i = 0; i < dim(); ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < rank(); ++j) {
      const double e = modes_(i, j) * sigmas_[j];
      s += e * e;
    }
    sd[i] = std::sqrt(s);
  }
  return sd;
}

la::Vector ErrorSubspace::sample(Rng& rng) const {
  la::Vector coeffs(rank());
  for (std::size_t j = 0; j < rank(); ++j)
    coeffs[j] = sigmas_[j] * rng.normal();
  return expand(coeffs);
}

double subspace_similarity(const ErrorSubspace& a, const ErrorSubspace& b) {
  ESSEX_REQUIRE(a.dim() == b.dim(),
                "subspace similarity: dimension mismatch");
  if (a.empty() || b.empty()) return 0.0;
  // Cross-Gramian G = Eᴬᵀ Eᴮ (ka × kb).
  const la::Matrix g = la::matmul_at_b(a.modes(), b.modes());
  double num = 0.0;
  for (std::size_t i = 0; i < a.rank(); ++i) {
    const double la2 = a.sigmas()[i] * a.sigmas()[i];
    for (std::size_t j = 0; j < b.rank(); ++j) {
      const double lb2 = b.sigmas()[j] * b.sigmas()[j];
      num += la2 * lb2 * g(i, j) * g(i, j);
    }
  }
  double da = 0.0, db = 0.0;
  for (double s : a.sigmas()) da += s * s * s * s;
  for (double s : b.sigmas()) db += s * s * s * s;
  if (da == 0.0 || db == 0.0) return 0.0;
  return num / std::sqrt(da * db);
}

}  // namespace essex::esse
