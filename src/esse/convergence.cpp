#include "esse/convergence.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace essex::esse {

ConvergenceTest::ConvergenceTest(Params params) : params_(params) {
  ESSEX_REQUIRE(params.similarity_threshold > 0.0 &&
                    params.similarity_threshold <= 1.0,
                "similarity threshold must lie in (0,1]");
}

std::optional<double> ConvergenceTest::update(const ErrorSubspace& subspace,
                                              std::size_t n_members) {
  if (n_members < params_.min_members) return std::nullopt;
  if (!previous_.has_value()) {
    previous_ = subspace;
    previous_n_ = n_members;
    return std::nullopt;
  }
  ESSEX_REQUIRE(n_members >= previous_n_,
                "convergence updates must use non-decreasing ensemble sizes");
  const double rho = subspace_similarity(*previous_, subspace);
  history_.push_back({n_members, rho});
  if (rho >= params_.similarity_threshold) converged_ = true;
  previous_ = subspace;
  previous_n_ = n_members;
  return rho;
}

EnsembleSizeController::EnsembleSizeController(Params params)
    : params_(params), target_(params.initial) {
  ESSEX_REQUIRE(params.initial >= 2, "initial ensemble size must be >= 2");
  ESSEX_REQUIRE(params.growth > 1.0, "growth factor must exceed 1");
  ESSEX_REQUIRE(params.max_members >= params.initial,
                "Nmax must be >= the initial size");
  ESSEX_REQUIRE(params.min_members <= params.max_members,
                "min_members floor must be <= Nmax");
}

std::size_t EnsembleSizeController::floor_members() const {
  return std::min(std::max<std::size_t>(params_.min_members, 2),
                  params_.max_members);
}

std::size_t EnsembleSizeController::pool_target(double headroom) const {
  // `!(headroom >= 1.0)` also catches NaN; huge/inf headroom saturates at
  // Nmax before the double→size_t cast can overflow.
  const double h = !(headroom >= 1.0) ? 1.0 : headroom;
  const double m = std::ceil(static_cast<double>(target_) * h);
  if (!(m < static_cast<double>(params_.max_members))) {
    return params_.max_members;
  }
  return std::max(static_cast<std::size_t>(m), target_);
}

std::size_t EnsembleSizeController::grow() {
  const auto next = static_cast<std::size_t>(
      std::ceil(static_cast<double>(target_) * params_.growth));
  target_ = std::min(std::max(next, target_ + 1), params_.max_members);
  return target_;
}

std::size_t EnsembleSizeController::shrink() {
  auto next = static_cast<std::size_t>(
      std::floor(static_cast<double>(target_) / params_.growth));
  next = std::min(next, target_ > 0 ? target_ - 1 : std::size_t{0});
  target_ = std::max(next, floor_members());
  return target_;
}

}  // namespace essex::esse
