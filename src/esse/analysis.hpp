// ESSEX: the ESSE analysis (data assimilation) step.
//
// With the forecast uncertainty P ≈ E Λ Eᵀ confined to the error
// subspace, the minimum-variance update (paper Eq. B1c) reduces to small
// dense algebra: the k×k posterior core C = (Λ⁻¹ + (HE)ᵀR⁻¹HE)⁻¹ gives
// the posterior mean x_a = x_f + E·C·(HE)ᵀR⁻¹·d and the posterior modes
// from C's eigendecomposition. Costs O(m·k + p·k²): no full-space
// covariance is ever formed — the whole point of ESSE.
#pragma once

#include "esse/error_subspace.hpp"
#include "linalg/matrix.hpp"
#include "obs/observation.hpp"

namespace essex::esse {

/// Output of one assimilation step.
struct AnalysisResult {
  la::Vector posterior_state;       ///< x_a
  ErrorSubspace posterior_subspace; ///< Ê Λ̂ Êᵀ ≈ P_a
  double prior_innovation_rms = 0;  ///< rms(yᵒ − H x_f)
  double posterior_innovation_rms = 0;  ///< rms(yᵒ − H x_a)
  double prior_trace = 0;   ///< tr(P_f)
  double posterior_trace = 0;  ///< tr(P_a) — must not exceed prior_trace
};

/// Perform the ESSE subspace Kalman update.
///
/// `forecast` is the central forecast x_f (dimension = subspace.dim()),
/// `subspace` carries the forecast error modes and sigmas, and `h` holds
/// the observations (values + diagonal noise covariance R).
/// Requires a non-empty subspace and at least one observation.
AnalysisResult analyze(const la::Vector& forecast,
                       const ErrorSubspace& subspace,
                       const obs::ObsOperator& h);

/// A generic linear scalar observation on an arbitrary state vector:
/// y = Σ weight·x[index] + ε with ε ~ N(0, variance). Lets callers (e.g.
/// the coupled physical–acoustical assimilation of §2.2) reuse the ESSE
/// update on joint states that are not ocean grids.
struct LinearObservation {
  std::vector<std::pair<std::size_t, double>> stencil;
  double value = 0;
  double variance = 1.0;
};

/// ESSE update against generic linear observations. Same contract as
/// analyze(); stencil indices must lie inside the state dimension and
/// variances must be positive.
AnalysisResult analyze_linear(const la::Vector& forecast,
                              const ErrorSubspace& subspace,
                              const std::vector<LinearObservation>& obs);

}  // namespace essex::esse
