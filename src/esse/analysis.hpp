// ESSEX: the ESSE analysis (data assimilation) step.
//
// With the forecast uncertainty P ≈ E Λ Eᵀ confined to the error
// subspace, the minimum-variance update (paper Eq. B1c) reduces to small
// dense algebra: the k×k posterior core C = (Λ⁻¹ + (HE)ᵀR⁻¹HE)⁻¹ gives
// the posterior mean x_a = x_f + E·C·(HE)ᵀR⁻¹·d and the posterior modes
// from C's eigendecomposition. Costs O(m·k + p·k²): no full-space
// covariance is ever formed — the whole point of ESSE.
//
// One entry point serves every observation front end and both execution
// strategies: analyze(forecast, subspace, ObsSet, AnalysisOptions)
// dispatches to the historical global dense update (localization off —
// bitwise identical to the pre-redesign path) or to the tiled, localized
// engine of local_analysis.cpp (DESIGN.md §14): per-tile k×k solves with
// Gaspari–Cohn observation tapering, blended across halos with
// partition-of-unity weights. The pre-redesign signatures survive as
// thin forwarding wrappers over the ObsSet adapters.
#pragma once

#include <optional>
#include <string_view>
#include <vector>

#include "esse/error_subspace.hpp"
#include "esse/obs_set.hpp"
#include "linalg/matrix.hpp"
#include "obs/observation.hpp"
#include "ocean/tiling.hpp"

namespace essex::telemetry {
class Sink;
}

namespace essex::esse {

/// The pluggable analysis filters behind the unified analyze() entry
/// point (DESIGN.md §16). Every method consumes the same inputs — prior
/// mean, error subspace, ObsSet — and obeys the same contract: the
/// posterior covariance never exceeds the prior (analysis never hurts),
/// and results are bitwise invariant to thread count and observation
/// arrival order.
enum class AnalysisMethod {
  /// The paper's information-form subspace Kalman update (Eq. B1c) —
  /// the default, bitwise identical to the pre-refactor path.
  kSubspaceKalman = 0,
  /// Ensemble-transform Kalman filter: the update is solved in the
  /// k-dimensional coefficient space via the *symmetric* square root of
  /// the transform, T^{1/2} = V (I+Γ)^{-1/2} Vᵀ. Mathematically the
  /// identical posterior mean and covariance as kSubspaceKalman (the
  /// filter-equivalence property the testkit pins to 1e-10).
  kEtkf,
  /// Serial (Potter/integral-form) ensemble square-root filter: scalar
  /// observations assimilated one at a time in *canonical* order —
  /// analyze() content-sorts the ObsSet first, so the result is
  /// invariant to how the batch was assembled (§10 determinism).
  kEsrf,
  /// Multi-model combiner (mm-enkf): a deliberately-biased coarse
  /// surrogate forecast is assimilated as pseudo-observations appended
  /// after the real ones, then the subspace-Kalman core runs on the
  /// combined set.
  kMultiModel,
};

/// Canonical lowercase name ("subspace_kalman", "etkf", "esrf",
/// "multi_model").
const char* to_string(AnalysisMethod method);

/// Every method analyze() dispatches over, in canonical enum order —
/// the registry the testkit generators and cross-validation oracles
/// iterate.
const std::vector<AnalysisMethod>& analysis_method_registry();

/// True when `method` is one of the registered values (guards against
/// enum values cast from untrusted integers).
bool is_registered(AnalysisMethod method);

/// Parse a canonical method name (bench/CLI flags); nullopt on unknown.
std::optional<AnalysisMethod> parse_analysis_method(std::string_view name);

/// Output of one assimilation step.
struct AnalysisResult {
  la::Vector posterior_state;       ///< x_a
  ErrorSubspace posterior_subspace; ///< Ê Λ̂ Êᵀ ≈ P_a
  double prior_innovation_rms = 0;  ///< rms(yᵒ − H x_f)
  double posterior_innovation_rms = 0;  ///< rms(yᵒ − H x_a)
  double prior_trace = 0;   ///< tr(P_f)
  double posterior_trace = 0;  ///< tr(P_a) — must not exceed prior_trace
};

/// Distance-based observation localization. When enabled, an observation
/// influences a tile's solve with its noise variance inflated by
/// 1/GC(d) — the Gaspari–Cohn taper of the distance d from the
/// observation to the tile's owned rectangle — and drops out entirely
/// past the support 2·radius_km. Unpositioned observations (generic
/// linear stencils) reach every tile untapered.
struct LocalizationParams {
  bool enabled = false;
  double radius_km = 0.0;  ///< GC half-support c; influence dies at 2c
};

/// Multi-model pseudo-observation knobs for analyze() (method ==
/// kMultiModel): the surrogate forecast is sampled at every `stride`-th
/// packed index (canonical ascending order) and each sample becomes an
/// identity-stencil observation whose noise variance is the prior
/// marginal variance at that index inflated by `variance_inflation` —
/// the mm-enkf discipline of weighting the second model by the first's
/// uncertainty, with a floor so degenerate prior directions stay
/// assimilable.
struct MultiModelObs {
  const la::Vector* surrogate = nullptr;  ///< packed fine-grid forecast
  std::size_t stride = 25;
  double variance_inflation = 4.0;
  double variance_floor = 1e-6;
};

/// How one analyze() call executes. The default — localization off —
/// runs the global dense update exactly as before the redesign; enabling
/// localization selects the tiled engine, which needs the grid geometry
/// for tiling and distances.
struct AnalysisOptions {
  LocalizationParams localization;
  ocean::TilingParams tiling;  ///< tile decomposition of the tiled engine
  std::size_t threads = 1;     ///< worker threads (per-tile solves and
                               ///< the global HE build)
  const ocean::Grid3D* grid = nullptr;  ///< required when localized
  AnalysisMethod method = AnalysisMethod::kSubspaceKalman;
  MultiModelObs multi_model;  ///< required when method == kMultiModel
  /// Optional telemetry (nullable, not owned): `analysis.*` counters —
  /// method name, observation counts, the thread count actually used.
  telemetry::Sink* sink = nullptr;
};

/// Method selection + surrogate knobs as carried by CycleParams and
/// ForecastRequest (workflow::validate() covers every constraint). The
/// surrogate_* fields shape the deliberately-biased coarse companion
/// model (a GridHierarchy level integrated once per cycle); the pseudo_*
/// fields feed MultiModelObs.
struct AnalysisParams {
  AnalysisMethod method = AnalysisMethod::kSubspaceKalman;
  std::size_t surrogate_levels = 2;   ///< hierarchy depth; the surrogate
                                      ///< runs on the coarsest level
  std::size_t surrogate_coarsen = 2;  ///< horizontal coarsening factor
  double surrogate_bias = 0.0;  ///< additive bias on top of the coarse
                                ///< truncation error (tests/benches)
  std::size_t pseudo_obs_stride = 25;
  double pseudo_variance_inflation = 4.0;
  double pseudo_variance_floor = 1e-6;
};

/// The Gaspari–Cohn 5th-order piecewise-rational correlation function:
/// 1 at distance 0, compactly supported on [0, 2·half_support). The
/// first-class localization taper.
double gaspari_cohn(double dist, double half_support);

/// Perform the ESSE analysis with options.method. Requires a non-empty
/// subspace, at least one observation, and forecast.size() ==
/// subspace.dim(); when options.localization.enabled, also a grid whose
/// packed size matches the state; when method == kMultiModel, also a
/// surrogate forecast of the same dimension.
AnalysisResult analyze(const la::Vector& forecast,
                       const ErrorSubspace& subspace, const ObsSet& obs,
                       const AnalysisOptions& options = {});

/// Thin forwarding wrapper (pre-redesign signature): update against a
/// gridded measurement operator, with the full options surface.
AnalysisResult analyze(const la::Vector& forecast,
                       const ErrorSubspace& subspace,
                       const obs::ObsOperator& h,
                       const AnalysisOptions& options = {});

/// Thin forwarding wrapper (pre-redesign signature): update against
/// generic linear observations. Stencil indices must lie inside the
/// state dimension and variances must be positive.
AnalysisResult analyze_linear(const la::Vector& forecast,
                              const ErrorSubspace& subspace,
                              const std::vector<LinearObservation>& obs,
                              const AnalysisOptions& options = {});

/// The combined observation set the multi-model method assimilates: the
/// real observations followed by the surrogate's pseudo-observations in
/// canonical (ascending packed-index) order. Exposed so tests can pin
/// the combiner to "kSubspaceKalman on this exact set", bitwise. When
/// options.grid is set the pseudo-observations carry grid positions and
/// participate in localization tapering.
ObsSet with_pseudo_observations(const ErrorSubspace& subspace,
                                const ObsSet& obs,
                                const AnalysisOptions& options);

namespace detail {

/// The shared k×k posterior core: C = B (I + Bᵀ G B)⁻¹ B with
/// B = diag(sigmas) and G = HEᵀ R⁻¹ HE, used by both the global update
/// and every tile's local solve.
la::Matrix posterior_core(const la::Vector& sigmas, const la::Matrix& g);

/// Shared truncation rule for posterior spectra: modes kept while the
/// eigenvalue clears 1e-14 of the leading one, never fewer than one.
std::size_t kept_rank(const la::Vector& eigenvalues);

/// ETKF solve in coefficient space: given the prior spectrum B =
/// diag(sigmas), G = HEᵀR⁻¹HE and rhs = HEᵀR⁻¹d, produce the increment
/// coefficients w = B T B·rhs and the square-root factor S = B·T^{1/2}
/// (so C = S·Sᵀ equals the Kalman posterior core exactly). T^{1/2} is
/// the *symmetric* square root — a spectral function of A = BᵀGB, so
/// eigenvector sign conventions cancel and the factor is canonical by
/// construction.
void etkf_solve(const la::Vector& sigmas, const la::Matrix& g,
                const la::Vector& rhs, la::Vector& w, la::Matrix& smat);

/// Serial square-root (Potter) sweep: assimilate the observations named
/// by `local` (obs index, taper weight) one scalar at a time, in the
/// given order, against rows of `he` with noise rvar[i]/taper. Produces
/// the increment coefficients w and the posterior square-root factor
/// W (k×k, starts at diag(sigmas)); for diagonal R the result equals
/// the joint Kalman update exactly.
void esrf_solve(const la::Vector& sigmas, const la::Matrix& he,
                const la::Vector& d, const la::Vector& rvar,
                const std::vector<std::pair<std::size_t, double>>& local,
                la::Vector& w, la::Matrix& smat);

}  // namespace detail

}  // namespace essex::esse
