// ESSEX: the ESSE analysis (data assimilation) step.
//
// With the forecast uncertainty P ≈ E Λ Eᵀ confined to the error
// subspace, the minimum-variance update (paper Eq. B1c) reduces to small
// dense algebra: the k×k posterior core C = (Λ⁻¹ + (HE)ᵀR⁻¹HE)⁻¹ gives
// the posterior mean x_a = x_f + E·C·(HE)ᵀR⁻¹·d and the posterior modes
// from C's eigendecomposition. Costs O(m·k + p·k²): no full-space
// covariance is ever formed — the whole point of ESSE.
//
// One entry point serves every observation front end and both execution
// strategies: analyze(forecast, subspace, ObsSet, AnalysisOptions)
// dispatches to the historical global dense update (localization off —
// bitwise identical to the pre-redesign path) or to the tiled, localized
// engine of local_analysis.cpp (DESIGN.md §14): per-tile k×k solves with
// Gaspari–Cohn observation tapering, blended across halos with
// partition-of-unity weights. The pre-redesign signatures survive as
// thin forwarding wrappers over the ObsSet adapters.
#pragma once

#include "esse/error_subspace.hpp"
#include "esse/obs_set.hpp"
#include "linalg/matrix.hpp"
#include "obs/observation.hpp"
#include "ocean/tiling.hpp"

namespace essex::esse {

/// Output of one assimilation step.
struct AnalysisResult {
  la::Vector posterior_state;       ///< x_a
  ErrorSubspace posterior_subspace; ///< Ê Λ̂ Êᵀ ≈ P_a
  double prior_innovation_rms = 0;  ///< rms(yᵒ − H x_f)
  double posterior_innovation_rms = 0;  ///< rms(yᵒ − H x_a)
  double prior_trace = 0;   ///< tr(P_f)
  double posterior_trace = 0;  ///< tr(P_a) — must not exceed prior_trace
};

/// Distance-based observation localization. When enabled, an observation
/// influences a tile's solve with its noise variance inflated by
/// 1/GC(d) — the Gaspari–Cohn taper of the distance d from the
/// observation to the tile's owned rectangle — and drops out entirely
/// past the support 2·radius_km. Unpositioned observations (generic
/// linear stencils) reach every tile untapered.
struct LocalizationParams {
  bool enabled = false;
  double radius_km = 0.0;  ///< GC half-support c; influence dies at 2c
};

/// How one analyze() call executes. The default — localization off —
/// runs the global dense update exactly as before the redesign; enabling
/// localization selects the tiled engine, which needs the grid geometry
/// for tiling and distances.
struct AnalysisOptions {
  LocalizationParams localization;
  ocean::TilingParams tiling;  ///< tile decomposition of the tiled engine
  std::size_t threads = 1;     ///< worker threads for the per-tile solves
  const ocean::Grid3D* grid = nullptr;  ///< required when localized
};

/// The Gaspari–Cohn 5th-order piecewise-rational correlation function:
/// 1 at distance 0, compactly supported on [0, 2·half_support). The
/// first-class localization taper.
double gaspari_cohn(double dist, double half_support);

/// Perform the ESSE subspace Kalman update. Requires a non-empty
/// subspace, at least one observation, and forecast.size() ==
/// subspace.dim(); when options.localization.enabled, also a grid whose
/// packed size matches the state.
AnalysisResult analyze(const la::Vector& forecast,
                       const ErrorSubspace& subspace, const ObsSet& obs,
                       const AnalysisOptions& options = {});

/// Thin forwarding wrapper (pre-redesign signature): global update
/// against a gridded measurement operator.
AnalysisResult analyze(const la::Vector& forecast,
                       const ErrorSubspace& subspace,
                       const obs::ObsOperator& h);

/// Thin forwarding wrapper (pre-redesign signature): global update
/// against generic linear observations. Stencil indices must lie inside
/// the state dimension and variances must be positive.
AnalysisResult analyze_linear(const la::Vector& forecast,
                              const ErrorSubspace& subspace,
                              const std::vector<LinearObservation>& obs);

namespace detail {

/// The shared k×k posterior core: C = B (I + Bᵀ G B)⁻¹ B with
/// B = diag(sigmas) and G = HEᵀ R⁻¹ HE, used by both the global update
/// and every tile's local solve.
la::Matrix posterior_core(const la::Vector& sigmas, const la::Matrix& g);

/// Shared truncation rule for posterior spectra: modes kept while the
/// eigenvalue clears 1e-14 of the leading one, never fewer than one.
std::size_t kept_rank(const la::Vector& eigenvalues);

}  // namespace detail

}  // namespace essex::esse
