// ESSEX: ESSE convergence control (paper §3/Fig. 2, §4 point 2).
//
// "A convergence criterion compares error subspaces of different sizes.
// Hence the dimensions of the ensemble and error subspace vary in time."
// ConvergenceTest tracks the subspace estimated at successive ensemble
// sizes and reports convergence when the weighted similarity coefficient
// exceeds a threshold. EnsembleSizeController implements the staged pool
// growth N → N₂ → … → Nmax.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "esse/error_subspace.hpp"

namespace essex::esse {

/// Successive-subspace convergence test.
class ConvergenceTest {
 public:
  struct Params {
    double similarity_threshold = 0.97;  ///< ρ* for convergence
    std::size_t min_members = 8;  ///< don't test below this ensemble size
  };

  explicit ConvergenceTest(Params params);

  /// Record the subspace estimated from `n_members` members; returns the
  /// similarity with the previous estimate (nullopt for the first call or
  /// when below min_members).
  std::optional<double> update(const ErrorSubspace& subspace,
                               std::size_t n_members);

  /// True once two successive estimates agreed at the threshold.
  bool converged() const { return converged_; }

  /// History of (n_members, similarity-with-previous) pairs.
  struct Sample {
    std::size_t n_members;
    double similarity;
  };
  const std::vector<Sample>& history() const { return history_; }

  const Params& params() const { return params_; }

 private:
  Params params_;
  std::optional<ErrorSubspace> previous_;
  std::size_t previous_n_ = 0;
  std::vector<Sample> history_;
  bool converged_ = false;
};

/// Staged ensemble-size schedule: start at N, multiply by `growth` on
/// each failed convergence test, cap at Nmax (paper §4.1 last paragraph).
/// The ForecastService additionally drives the schedule *down* under
/// deadline or multi-tenant pressure: shrink() walks the target back
/// toward the `min_members` floor, so an elastic runner can hand worker
/// slots to other requests without restarting the ensemble.
class EnsembleSizeController {
 public:
  struct Params {
    std::size_t initial = 32;
    double growth = 2.0;
    std::size_t max_members = 512;  ///< Nmax
    /// Elasticity floor: shrink() never reduces the target below this
    /// (and never below 2 — a spread needs two members).
    std::size_t min_members = 2;
  };

  explicit EnsembleSizeController(Params params);

  /// Current target ensemble size N.
  std::size_t target() const { return target_; }

  /// Pool size M ≥ N: keep `headroom` extra members in flight so the SVD
  /// pipeline never drains while the pool is enlarged. Degenerate
  /// headroom is clamped rather than rejected — anything below 1 (or
  /// non-finite) behaves as 1, and extreme headroom saturates at Nmax —
  /// so an elastic service can feed it raw policy arithmetic.
  std::size_t pool_target(double headroom = 1.25) const;

  /// Enlarge after a failed convergence test; returns the new target.
  /// Saturates at Nmax.
  std::size_t grow();

  /// Walk the target back by one growth stage (inverse of grow());
  /// returns the new target. Saturates at the min_members floor.
  std::size_t shrink();

  bool at_max() const { return target_ >= params_.max_members; }
  bool at_min() const { return target_ <= floor_members(); }

  const Params& params() const { return params_; }

 private:
  /// Effective shrink floor: max(min_members, 2), capped at Nmax.
  std::size_t floor_members() const;

  Params params_;
  std::size_t target_;
};

}  // namespace essex::esse
