// ESSEX: ESSE convergence control (paper §3/Fig. 2, §4 point 2).
//
// "A convergence criterion compares error subspaces of different sizes.
// Hence the dimensions of the ensemble and error subspace vary in time."
// ConvergenceTest tracks the subspace estimated at successive ensemble
// sizes and reports convergence when the weighted similarity coefficient
// exceeds a threshold. EnsembleSizeController implements the staged pool
// growth N → N₂ → … → Nmax.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "esse/error_subspace.hpp"

namespace essex::esse {

/// Successive-subspace convergence test.
class ConvergenceTest {
 public:
  struct Params {
    double similarity_threshold = 0.97;  ///< ρ* for convergence
    std::size_t min_members = 8;  ///< don't test below this ensemble size
  };

  explicit ConvergenceTest(Params params);

  /// Record the subspace estimated from `n_members` members; returns the
  /// similarity with the previous estimate (nullopt for the first call or
  /// when below min_members).
  std::optional<double> update(const ErrorSubspace& subspace,
                               std::size_t n_members);

  /// True once two successive estimates agreed at the threshold.
  bool converged() const { return converged_; }

  /// History of (n_members, similarity-with-previous) pairs.
  struct Sample {
    std::size_t n_members;
    double similarity;
  };
  const std::vector<Sample>& history() const { return history_; }

  const Params& params() const { return params_; }

 private:
  Params params_;
  std::optional<ErrorSubspace> previous_;
  std::size_t previous_n_ = 0;
  std::vector<Sample> history_;
  bool converged_ = false;
};

/// Staged ensemble-size schedule: start at N, multiply by `growth` on
/// each failed convergence test, cap at Nmax (paper §4.1 last paragraph).
class EnsembleSizeController {
 public:
  struct Params {
    std::size_t initial = 32;
    double growth = 2.0;
    std::size_t max_members = 512;  ///< Nmax
  };

  explicit EnsembleSizeController(Params params);

  /// Current target ensemble size N.
  std::size_t target() const { return target_; }

  /// Pool size M ≥ N: keep `headroom` extra members in flight so the SVD
  /// pipeline never drains while the pool is enlarged.
  std::size_t pool_target(double headroom = 1.25) const;

  /// Enlarge after a failed convergence test; returns the new target.
  /// Saturates at Nmax.
  std::size_t grow();

  bool at_max() const { return target_ >= params_.max_members; }

  const Params& params() const { return params_; }

 private:
  Params params_;
  std::size_t target_;
};

}  // namespace essex::esse
