// ESSEX: deterministic error-subspace forecast by mode propagation.
//
// The full ESSE methodology (paper refs. [10,15]) can evolve the error
// subspace either by a Monte-Carlo ensemble (what §4 parallelises) or by
// propagating each error mode through the tangent-linear dynamics. The
// finite-difference form needs only rank+1 model runs instead of N ≫
// rank members:
//
//   L·eⱼ ≈ [M(x̂ + ε σⱼ eⱼ) − M(x̂)] / ε,
//
// an SVD of the propagated, σ-scaled columns yields the forecast modes.
// It misses the model-noise contribution (dη) the stochastic ensemble
// captures — the trade-off the ablation bench quantifies.
#pragma once

#include <cstddef>

#include "esse/error_subspace.hpp"
#include "ocean/model.hpp"

namespace essex::esse {

struct TangentForecast {
  la::Vector central_forecast;      ///< deterministic M(x̂)
  ErrorSubspace forecast_subspace;  ///< propagated + re-orthonormalised
  std::size_t model_runs = 0;       ///< rank + 1
};

/// Propagate `subspace` from `t0_hours` over `forecast_hours` through
/// the (deterministic) model, using perturbation scale `epsilon` per
/// mode. `threads` > 1 runs the mode integrations on a thread pool.
TangentForecast tangent_forecast(const ocean::OceanModel& model,
                                 const ocean::OceanState& initial,
                                 const ErrorSubspace& subspace,
                                 double t0_hours, double forecast_hours,
                                 double epsilon = 1.0,
                                 std::size_t threads = 1,
                                 double variance_fraction = 0.99,
                                 std::size_t max_rank = 0);

}  // namespace essex::esse
