#include "esse/multilevel.hpp"

#include <cmath>

#include "common/error.hpp"
#include "ocean/state.hpp"

namespace essex::esse {

std::size_t MultilevelParams::total_members() const {
  std::size_t n = 0;
  for (std::size_t c : members_per_level) n += c;
  return n;
}

std::size_t MultilevelParams::level_offset(std::size_t level) const {
  ESSEX_REQUIRE(level < members_per_level.size(),
                "multilevel params have no such level");
  std::size_t off = 0;
  for (std::size_t l = 0; l < level; ++l) off += members_per_level[l];
  return off;
}

std::size_t MultilevelParams::level_of(std::size_t gid) const {
  std::size_t off = 0;
  for (std::size_t l = 0; l < members_per_level.size(); ++l) {
    off += members_per_level[l];
    if (gid < off) return l;
  }
  ESSEX_REQUIRE(false, "member id beyond the planned multilevel ensemble");
  return 0;
}

double MultilevelParams::weight(std::size_t level) const {
  ESSEX_REQUIRE(level < members_per_level.size(),
                "multilevel params have no such level");
  if (members_per_level[level] == 0) return 0.0;
  // Normalise over the non-empty levels only: an empty level contributes
  // no columns, so giving it weight would silently deflate the estimate.
  double total = 0.0, mine = 0.0;
  for (std::size_t l = 0; l < members_per_level.size(); ++l) {
    if (members_per_level[l] == 0) continue;
    const double w = level_weights.empty()
                         ? static_cast<double>(members_per_level[l])
                         : level_weights[l];
    total += w;
    if (l == level) mine = w;
  }
  ESSEX_REQUIRE(total > 0.0, "multilevel pooling weights sum to zero");
  return mine / total;
}

double MultilevelParams::column_weight(std::size_t level) const {
  const std::size_t n_l = members_per_level[level];
  ESSEX_REQUIRE(n_l >= 2, "a level with columns needs >= 2 members");
  const std::size_t n_tot = total_members();
  if (n_l == n_tot) return 1.0;  // degenerate: bitwise single-level
  return std::sqrt(weight(level) * static_cast<double>(n_tot - 1) /
                   static_cast<double>(n_l - 1));
}

double MultilevelParams::cost_ratio(std::size_t level) const {
  if (!cost_ratios.empty()) {
    ESSEX_REQUIRE(level < cost_ratios.size(),
                  "cost_ratios has no such level");
    return cost_ratios[level];
  }
  return std::pow(static_cast<double>(coarsen),
                  -3.0 * static_cast<double>(level));
}

double MultilevelParams::total_cost_units() const {
  if (!enabled()) return static_cast<double>(total_members());
  double units = 0.0;
  for (std::size_t l = 0; l < members_per_level.size(); ++l)
    units += static_cast<double>(members_per_level[l]) * cost_ratio(l);
  return units;
}

MultilevelEnsemble::MultilevelEnsemble(const ocean::OceanModel& fine_model,
                                       const MultilevelParams& params)
    : params_(params),
      fine_model_(fine_model),
      hierarchy_(fine_model.grid(), params.levels, params.coarsen) {
  ESSEX_REQUIRE(params_.enabled(), "multilevel ensemble needs levels > 1");
  ESSEX_REQUIRE(params_.members_per_level.size() == params_.levels,
                "members_per_level must name every level");
  coarse_models_.reserve(params_.levels - 1);
  const la::Vector fine_clim = fine_model.climatology().pack();
  for (std::size_t l = 1; l < params_.levels; ++l) {
    const ocean::Grid3D& g = hierarchy_.grid(l);
    ocean::OceanState clim(g);
    clim.unpack(hierarchy_.restrict_state(fine_clim, l), g);
    coarse_models_.push_back(std::make_unique<ocean::OceanModel>(
        g, fine_model.params(), fine_model.forcing(), clim));
  }
}

const ocean::OceanModel& MultilevelEnsemble::model(std::size_t level) const {
  if (level == 0) return fine_model_;
  ESSEX_REQUIRE(level < params_.levels, "hierarchy has no such level");
  return *coarse_models_[level - 1];
}

void MultilevelEnsemble::run_centrals(const la::Vector& fine_packed_initial,
                                      double t0_hours,
                                      double forecast_hours) {
  centrals_.clear();
  centrals_.reserve(params_.levels - 1);
  for (std::size_t l = 1; l < params_.levels; ++l) {
    const ocean::Grid3D& g = hierarchy_.grid(l);
    ocean::OceanState st(g);
    st.unpack(hierarchy_.restrict_state(fine_packed_initial, l), g);
    model(l).run(st, t0_hours, forecast_hours, nullptr);
    centrals_.push_back(st.pack());
  }
}

const la::Vector& MultilevelEnsemble::central(std::size_t level) const {
  ESSEX_REQUIRE(level >= 1 && level < params_.levels,
                "coarse central forecasts exist for levels 1..L-1");
  ESSEX_REQUIRE(centrals_.size() == params_.levels - 1,
                "run_centrals() must run before member anomalies");
  return centrals_[level - 1];
}

la::Vector MultilevelEnsemble::fine_anomaly(
    std::size_t level, const la::Vector& packed_forecast) const {
  const la::Vector& c = central(level);
  ESSEX_REQUIRE(packed_forecast.size() == c.size(),
                "member forecast does not match the level's state size");
  la::Vector anom(c.size());
  for (std::size_t i = 0; i < anom.size(); ++i)
    anom[i] = packed_forecast[i] - c[i];
  la::Vector fine = hierarchy_.prolong_state(anom, level);
  const double w = params_.column_weight(level);
  if (w != 1.0)
    for (double& v : fine) v *= w;
  return fine;
}

}  // namespace essex::esse
