#include "esse/subspace_io.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <vector>

#include "common/error.hpp"
#include "ocean/state_io.hpp"

namespace essex::esse {

namespace {

using ocean::esxf::kKindSubspace;
using ocean::esxf::kMagic;
using ocean::esxf::kVersion;

void write_u32(std::ofstream& f, std::uint32_t v) {
  f.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void write_u64(std::ofstream& f, std::uint64_t v) {
  f.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint32_t read_u32(std::ifstream& f) {
  std::uint32_t v = 0;
  f.read(reinterpret_cast<char*>(&v), sizeof(v));
  return v;
}

std::uint64_t read_u64(std::ifstream& f) {
  std::uint64_t v = 0;
  f.read(reinterpret_cast<char*>(&v), sizeof(v));
  return v;
}

}  // namespace

void save_subspace(const std::string& path, const ErrorSubspace& subspace) {
  ESSEX_REQUIRE(!subspace.empty(), "cannot save an empty subspace");
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) throw Error("cannot open for writing: " + path);
  f.write(kMagic, 4);
  write_u32(f, kVersion);
  write_u32(f, kKindSubspace);
  write_u64(f, subspace.dim());
  write_u64(f, subspace.rank());
  f.write(reinterpret_cast<const char*>(subspace.sigmas().data()),
          static_cast<std::streamsize>(subspace.rank() * sizeof(double)));
  f.write(reinterpret_cast<const char*>(subspace.modes().data().data()),
          static_cast<std::streamsize>(subspace.modes().data().size() *
                                       sizeof(double)));
  if (!f) throw Error("failed writing: " + path);
}

ErrorSubspace load_subspace(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw Error("cannot open for reading: " + path);
  char magic[4];
  f.read(magic, 4);
  if (!f || std::memcmp(magic, kMagic, 4) != 0) {
    throw Error("not an ESSEX product file: " + path);
  }
  if (read_u32(f) != kVersion) {
    throw Error("unsupported product version in " + path);
  }
  if (read_u32(f) != kKindSubspace) {
    throw Error("wrong product kind in " + path);
  }
  const std::uint64_t dim = read_u64(f);
  const std::uint64_t rank = read_u64(f);
  if (dim == 0 || rank == 0 || rank > dim) {
    throw Error("corrupt subspace header in " + path);
  }
  la::Vector sigmas(rank);
  f.read(reinterpret_cast<char*>(sigmas.data()),
         static_cast<std::streamsize>(rank * sizeof(double)));
  la::Matrix modes(dim, rank);
  f.read(reinterpret_cast<char*>(modes.data().data()),
         static_cast<std::streamsize>(modes.data().size() * sizeof(double)));
  if (!f) throw Error("truncated product file: " + path);
  return ErrorSubspace(std::move(modes), std::move(sigmas));
}

}  // namespace essex::esse
