#include "esse/subspace_io.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "common/error.hpp"
#include "ocean/state_io.hpp"

namespace essex::esse {

namespace {

using ocean::esxf::kKindSubspace;
using ocean::esxf::kMagic;
using ocean::esxf::kVersion;

void write_u32(std::ostream& f, std::uint32_t v) {
  f.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void write_u64(std::ostream& f, std::uint64_t v) {
  f.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

// A file cut off mid-header must surface as the truncation error right
// at the short read. Reading into a zero-initialised value and carrying
// on would hand later checks garbage — a header that happens to decode
// as dim=0 reads as "corrupt", but one that decodes plausibly would
// sail through to a misleading failure (or none at all).
std::uint32_t read_u32(std::istream& f, const std::string& name) {
  std::uint32_t v = 0;
  f.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!f) throw Error("truncated product file: " + name);
  return v;
}

std::uint64_t read_u64(std::istream& f, const std::string& name) {
  std::uint64_t v = 0;
  f.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!f) throw Error("truncated product file: " + name);
  return v;
}

}  // namespace

void save_subspace(std::ostream& out, const ErrorSubspace& subspace) {
  ESSEX_REQUIRE(!subspace.empty(), "cannot save an empty subspace");
  out.write(kMagic, 4);
  write_u32(out, kVersion);
  write_u32(out, kKindSubspace);
  write_u64(out, subspace.dim());
  write_u64(out, subspace.rank());
  out.write(reinterpret_cast<const char*>(subspace.sigmas().data()),
            static_cast<std::streamsize>(subspace.rank() * sizeof(double)));
  out.write(reinterpret_cast<const char*>(subspace.modes().data().data()),
            static_cast<std::streamsize>(subspace.modes().data().size() *
                                         sizeof(double)));
}

void save_subspace(const std::string& path, const ErrorSubspace& subspace) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) throw Error("cannot open for writing: " + path);
  save_subspace(f, subspace);
  if (!f) throw Error("failed writing: " + path);
}

ErrorSubspace load_subspace(std::istream& f, const std::string& name) {
  char magic[4];
  f.read(magic, 4);
  if (!f || std::memcmp(magic, kMagic, 4) != 0) {
    throw Error("not an ESSEX product file: " + name);
  }
  if (read_u32(f, name) != kVersion) {
    throw Error("unsupported product version in " + name);
  }
  if (read_u32(f, name) != kKindSubspace) {
    throw Error("wrong product kind in " + name);
  }
  const std::uint64_t dim = read_u64(f, name);
  const std::uint64_t rank = read_u64(f, name);
  if (dim == 0 || rank == 0 || rank > dim) {
    throw Error("corrupt subspace header in " + name);
  }
  la::Vector sigmas(rank);
  f.read(reinterpret_cast<char*>(sigmas.data()),
         static_cast<std::streamsize>(rank * sizeof(double)));
  la::Matrix modes(dim, rank);
  f.read(reinterpret_cast<char*>(modes.data().data()),
         static_cast<std::streamsize>(modes.data().size() * sizeof(double)));
  if (!f) throw Error("truncated product file: " + name);
  return ErrorSubspace(std::move(modes), std::move(sigmas));
}

ErrorSubspace load_subspace(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw Error("cannot open for reading: " + path);
  return load_subspace(f, path);
}

}  // namespace essex::esse
