#include "esse/differ.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/error.hpp"
#include "common/telemetry.hpp"
#include "linalg/eig_sym.hpp"
#include "linalg/gram.hpp"
#include "linalg/simd.hpp"

namespace essex::esse {

la::Matrix AnomalyView::materialize() const {
  const std::size_t n = columns.size();
  la::Matrix a(state_dim, n);
  if (n == 0) return a;
  const double scale =
      n > 1 ? 1.0 / std::sqrt(static_cast<double>(n - 1)) : 1.0;
  double* out = a.data().data();
  for (std::size_t j = 0; j < n; ++j) {
    const std::span<const double> col = columns[j].anomaly;
    for (std::size_t i = 0; i < state_dim; ++i)
      out[i * n + j] = col[i] * scale;
  }
  return a;
}

la::Matrix AnomalyView::gram() const {
  const std::size_t n = columns.size();
  la::Matrix g(n, n);
  const double scale = n > 1 ? 1.0 / static_cast<double>(n - 1) : 1.0;
  // Each cached border covers every column that arrived before its
  // owner, so for any canonical pair the later arrival's border holds
  // the dot product at the earlier arrival's storage position. The dot
  // itself was computed once, serially, at absorption time — assembly
  // order cannot perturb it.
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i <= j; ++i) {
      const AnomalyColumn& a = columns[i];
      const AnomalyColumn& b = columns[j];
      const AnomalyColumn& later = a.arrival_index >= b.arrival_index ? a : b;
      const AnomalyColumn& earlier = a.arrival_index >= b.arrival_index ? b : a;
      const double v = (*later.gram_row)[earlier.arrival_index] * scale;
      g(j, i) = v;
      g(i, j) = v;
    }
  }
  return g;
}

AnomalyView AnomalyView::prefix(std::size_t n) const {
  ESSEX_REQUIRE(n <= columns.size(), "prefix exceeds the view size");
  AnomalyView out;
  out.columns.assign(columns.begin(),
                     columns.begin() + static_cast<std::ptrdiff_t>(n));
  out.storage = storage;
  out.version = version;
  out.state_dim = state_dim;
  return out;
}

std::vector<std::size_t> AnomalyView::member_ids() const {
  std::vector<std::size_t> ids;
  ids.reserve(columns.size());
  for (const AnomalyColumn& c : columns) ids.push_back(c.member_id);
  return ids;
}

ErrorSubspace subspace_from_view(const AnomalyView& view,
                                 double variance_fraction,
                                 std::size_t max_rank, ThreadPool* pool,
                                 telemetry::Sink* sink) {
  const std::size_t n = view.count();
  const std::size_t m = view.state_dim;
  ESSEX_REQUIRE(n >= 2, "need at least two members for a spread estimate");
  const double t0 = sink ? telemetry::wall_seconds() : 0.0;

  if (n > m) {
    // Wide ensemble: the n×n Gram is larger than the m×m problem, so the
    // cached borders buy nothing — dense from-scratch path.
    if (sink) sink->count("differ.full_recomputes");
    const la::ThinSvd svd =
        la::svd_thin(view.materialize(), la::SvdMethod::kGram);
    ErrorSubspace out =
        ErrorSubspace::from_svd(svd.u, svd.s, variance_fraction, max_rank);
    if (sink) {
      sink->count("differ.subspace_checks");
      sink->observe("differ.subspace_s", telemetry::wall_seconds() - t0);
    }
    return out;
  }

  // The n×n eigensolve over the cached Gram (no AᵀA rebuild) ...
  const la::EigSym eig = la::eig_sym(view.gram());
  la::Vector s(n);
  for (std::size_t j = 0; j < n; ++j)
    s[j] = std::sqrt(std::max(eig.eigenvalues[j], 0.0));

  // ... then U = A·V·Σ⁻¹ over the retained modes only: truncating first
  // turns the O(m·n²) recovery into O(m·n·r).
  const std::size_t r =
      ErrorSubspace::truncation_rank(s, variance_fraction, max_rank);
  std::vector<la::ColSpan> cols;
  cols.reserve(n);
  for (const AnomalyColumn& c : view.columns) cols.push_back(c.anomaly);
  const double scale = 1.0 / std::sqrt(static_cast<double>(n - 1));
  la::Matrix u = la::columns_matmul(cols, eig.eigenvectors, r, scale, pool);
  for (std::size_t j = 0; j < r; ++j) {
    const double inv = (s[j] > 1e-300) ? 1.0 / s[j] : 0.0;
    for (std::size_t i = 0; i < m; ++i) u(i, j) *= inv;
  }
  la::Vector sig(s.begin(), s.begin() + static_cast<std::ptrdiff_t>(r));
  ErrorSubspace out(std::move(u), std::move(sig));
  if (sink) {
    sink->count("differ.subspace_checks");
    sink->count("differ.gram_cols_reused", static_cast<double>(n));
    sink->observe("differ.subspace_s", telemetry::wall_seconds() - t0);
  }
  return out;
}

Differ::Differ(la::Vector central,
               std::shared_ptr<const ocean::Tiling> tiling)
    : central_(std::move(central)), tiling_(std::move(tiling)) {
  ESSEX_REQUIRE(!central_.empty(), "central forecast must be non-empty");
  ESSEX_REQUIRE(tiling_ == nullptr ||
                    tiling_->packed_size() == central_.size(),
                "tiling does not match the central forecast");
  // Slabs big enough for several columns each, so a growing ensemble
  // allocates O(n / slab_cols) times, not O(n).
  arena_ = std::make_shared<la::ColumnArena>(
      std::max<std::size_t>(std::size_t{1} << 16, central_.size() * 8));
}

void Differ::add_member(std::size_t member_id, const la::Vector& forecast,
                        double weight) {
  ESSEX_REQUIRE(forecast.size() == central_.size(),
                "member forecast dimension mismatch");
  const std::span<double> anom = arena_->allocate(central_.size());
  if (weight == 1.0) {
    for (std::size_t i = 0; i < anom.size(); ++i)
      anom[i] = forecast[i] - central_[i];
  } else {
    for (std::size_t i = 0; i < anom.size(); ++i)
      anom[i] = (forecast[i] - central_[i]) * weight;
  }
  absorb(member_id, anom);
}

void Differ::add_anomaly(std::size_t member_id, const la::Vector& anomaly) {
  ESSEX_REQUIRE(anomaly.size() == central_.size(),
                "anomaly column dimension mismatch");
  const std::span<double> anom = arena_->allocate(central_.size());
  for (std::size_t i = 0; i < anom.size(); ++i) anom[i] = anomaly[i];
  absorb(member_id, anom);
}

void Differ::absorb(std::size_t member_id, std::span<double> anom) {
  // Catch-up loop: the Gram border is computed outside the lock against
  // whatever columns are already published (they are immutable), then the
  // lock is retaken — if more members landed meanwhile, absorb their
  // columns too and retry. Writers therefore only serialise for the O(1)
  // append, never for the O(m·k) dot products. Span copies of published
  // columns stay valid outside the lock: the arena never reclaims, even
  // across a concurrent rewrite (whose epoch bump discards our border).
  la::Vector border;  // border[i] = aᵢ·anom for i < border.size()
  std::uint64_t epoch = 0;
  bool have_epoch = false;
  std::size_t computed = 0;
  for (;;) {
    std::vector<la::ColSpan> prev;
    {
      std::lock_guard<std::mutex> lk(mu_);
      ESSEX_REQUIRE(member_id_set_.find(member_id) == member_id_set_.end(),
                    "duplicate ensemble member id");
      if (have_epoch && epoch != rewrite_epoch_) {
        border.clear();  // a rewrite invalidated everything computed so far
      }
      epoch = rewrite_epoch_;
      have_epoch = true;
      if (columns_.size() == border.size()) {
        border.push_back(
            tiling_ ? la::sumsq_sharded(anom, tiling_->shards())
                    : la::simd::kernels().sumsq(anom.data(), anom.size()));
        AnomalyColumn col;
        col.anomaly = anom;
        col.gram_row = std::make_shared<const la::Vector>(std::move(border));
        col.member_id = member_id;
        col.arrival_index = columns_.size();
        columns_.push_back(std::move(col));
        member_id_set_.insert(member_id);
        while (member_id_set_.count(contiguous_count_) != 0)
          ++contiguous_count_;
        ++version_;
        break;
      }
      prev.reserve(columns_.size() - border.size());
      for (std::size_t i = border.size(); i < columns_.size(); ++i)
        prev.push_back(columns_[i].anomaly);
    }
    const std::size_t old = border.size();
    border.resize(old + prev.size());
    if (tiling_)
      la::gram_append_sharded(prev, anom, tiling_->shards(),
                              border.data() + old);
    else
      la::gram_append(prev, anom, border.data() + old);
    computed += prev.size();
  }
  if (sink_)
    sink_->count("differ.gram_cols_computed",
                 static_cast<double>(computed + 1));
}

void Differ::rewrite_member(std::size_t member_id,
                            const la::Vector& forecast) {
  ESSEX_REQUIRE(forecast.size() == central_.size(),
                "member forecast dimension mismatch");
  // Fresh arena span; the old one is abandoned, not freed, so readers
  // holding views cut before the rewrite stay valid.
  const std::span<double> anom = arena_->allocate(central_.size());
  for (std::size_t i = 0; i < anom.size(); ++i)
    anom[i] = forecast[i] - central_[i];

  std::lock_guard<std::mutex> lk(mu_);
  auto it = std::find_if(columns_.begin(), columns_.end(),
                         [&](const AnomalyColumn& c) {
                           return c.member_id == member_id;
                         });
  ESSEX_REQUIRE(it != columns_.end(), "rewrite of an unknown member id");
  it->anomaly = anom;
  // Every later border row references the rewritten column: rebuild the
  // whole cache. This is the documented full-recompute path (O(m·n²)),
  // fused into kDotBlockCols-wide batches so each earlier column is
  // streamed from memory once per batch instead of once per column.
  const std::size_t n = columns_.size();
  std::vector<la::ColSpan> all;
  all.reserve(n);
  for (const AnomalyColumn& col : columns_) all.push_back(col.anomaly);
  std::vector<la::Vector> row_store;
  row_store.reserve(n);
  for (std::size_t j = 0; j < n; ++j) row_store.emplace_back(j + 1);
  const std::span<const la::ColSpan> cols(all);
  if (tiling_) {
    // Sharded store: rebuild each border entry through the same
    // tile-major reduction the append path uses, so a rebuilt cache is
    // bitwise identical to one grown column by column.
    for (std::size_t j = 0; j < n; ++j)
      for (std::size_t i = 0; i <= j; ++i)
        row_store[j][i] = la::dot_sharded(all[i], all[j], tiling_->shards());
  } else {
    for (std::size_t j0 = 0; j0 < n; j0 += la::simd::kDotBlockCols) {
      const std::size_t width = std::min(n - j0, la::simd::kDotBlockCols);
      std::vector<double*> rows(width);
      for (std::size_t w = 0; w < width; ++w)
        rows[w] = row_store[j0 + w].data();
      la::gram_border_rows(cols.first(j0), cols.subspan(j0, width), rows);
    }
  }
  for (std::size_t j = 0; j < n; ++j) {
    columns_[j].gram_row =
        std::make_shared<const la::Vector>(std::move(row_store[j]));
    columns_[j].arrival_index = j;
  }
  ++version_;
  ++rewrite_epoch_;
  if (sink_) sink_->count("differ.full_rebuilds");
}

std::size_t Differ::count() const {
  std::lock_guard<std::mutex> lk(mu_);
  return columns_.size();
}

std::size_t Differ::contiguous_count() const {
  std::lock_guard<std::mutex> lk(mu_);
  return contiguous_count_;
}

std::uint64_t Differ::version() const {
  std::lock_guard<std::mutex> lk(mu_);
  return version_;
}

namespace {

void sort_canonical(std::vector<AnomalyColumn>& cols) {
  std::sort(cols.begin(), cols.end(),
            [](const AnomalyColumn& a, const AnomalyColumn& b) {
              return a.member_id < b.member_id;
            });
}

}  // namespace

AnomalyView Differ::view(std::size_t prefix_cols) const {
  std::lock_guard<std::mutex> lk(mu_);
  const std::size_t n = prefix_cols == 0 ? columns_.size() : prefix_cols;
  ESSEX_REQUIRE(n <= columns_.size(),
                "view prefix exceeds the columns absorbed so far");
  AnomalyView v;
  v.columns.assign(columns_.begin(),
                   columns_.begin() + static_cast<std::ptrdiff_t>(n));
  sort_canonical(v.columns);
  v.storage = arena_;
  v.version = version_;
  v.state_dim = central_.size();
  return v;
}

AnomalyView Differ::contiguous_view() const {
  std::lock_guard<std::mutex> lk(mu_);
  AnomalyView v;
  v.columns.reserve(contiguous_count_);
  for (const AnomalyColumn& c : columns_)
    if (c.member_id < contiguous_count_) v.columns.push_back(c);
  sort_canonical(v.columns);
  v.storage = arena_;
  v.version = version_;
  v.state_dim = central_.size();
  return v;
}

SpreadSnapshot Differ::snapshot() const {
  const AnomalyView v = view();
  ESSEX_REQUIRE(v.count() >= 2,
                "need at least two members for a spread estimate");
  SpreadSnapshot snap;
  snap.member_ids = v.member_ids();
  snap.anomalies = v.materialize();
  return snap;
}

ErrorSubspace Differ::subspace(double variance_fraction, std::size_t max_rank,
                               la::SvdMethod method) const {
  if (method == la::SvdMethod::kGram) {
    return subspace_from_view(view(), variance_fraction, max_rank, nullptr,
                              sink_);
  }
  // Jacobi: dense from-scratch decomposition, highest accuracy.
  const SpreadSnapshot snap = snapshot();
  if (sink_) sink_->count("differ.full_recomputes");
  const la::ThinSvd svd = la::svd_thin(snap.anomalies, method);
  return ErrorSubspace::from_svd(svd.u, svd.s, variance_fraction, max_rank);
}

ErrorSubspace Differ::subspace_parallel(ThreadPool& pool,
                                        double variance_fraction,
                                        std::size_t max_rank) const {
  return subspace_from_view(view(), variance_fraction, max_rank, &pool,
                            sink_);
}

}  // namespace essex::esse
