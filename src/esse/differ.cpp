#include "esse/differ.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "linalg/parallel_kernels.hpp"

namespace essex::esse {

Differ::Differ(la::Vector central) : central_(std::move(central)) {
  ESSEX_REQUIRE(!central_.empty(), "central forecast must be non-empty");
}

void Differ::add_member(std::size_t member_id, const la::Vector& forecast) {
  ESSEX_REQUIRE(forecast.size() == central_.size(),
                "member forecast dimension mismatch");
  la::Vector anom(central_.size());
  for (std::size_t i = 0; i < anom.size(); ++i)
    anom[i] = forecast[i] - central_[i];
  std::lock_guard<std::mutex> lk(mu_);
  ESSEX_REQUIRE(std::find(member_ids_.begin(), member_ids_.end(),
                          member_id) == member_ids_.end(),
                "duplicate ensemble member id");
  anomalies_.push_back(std::move(anom));
  member_ids_.push_back(member_id);
}

std::size_t Differ::count() const {
  std::lock_guard<std::mutex> lk(mu_);
  return anomalies_.size();
}

SpreadSnapshot Differ::snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  ESSEX_REQUIRE(anomalies_.size() >= 2,
                "need at least two members for a spread estimate");
  SpreadSnapshot snap;
  snap.member_ids = member_ids_;
  snap.anomalies = la::Matrix::from_columns(anomalies_);
  const double scale =
      1.0 / std::sqrt(static_cast<double>(anomalies_.size() - 1));
  snap.anomalies *= scale;
  return snap;
}

ErrorSubspace Differ::subspace(double variance_fraction, std::size_t max_rank,
                               la::SvdMethod method) const {
  const SpreadSnapshot snap = snapshot();
  const la::ThinSvd svd = la::svd_thin(snap.anomalies, method);
  return ErrorSubspace::from_svd(svd.u, svd.s, variance_fraction, max_rank);
}

ErrorSubspace Differ::subspace_parallel(ThreadPool& pool,
                                        double variance_fraction,
                                        std::size_t max_rank) const {
  const SpreadSnapshot snap = snapshot();
  const la::ThinSvd svd = la::svd_gram_parallel(snap.anomalies, pool);
  return ErrorSubspace::from_svd(svd.u, svd.s, variance_fraction, max_rank);
}

}  // namespace essex::esse
