// ESSEX: multilevel (multi-fidelity) ensemble configuration and driver
// support (DESIGN.md §15).
//
// The multilevel estimator runs the ensemble at mixed grid resolutions:
// a few expensive fine members plus many cheap coarse ones (Seelinger et
// al.'s parallelized multilevel MCMC; the sintefmath/multilevelDA
// harness). Each level integrates its own members about its own
// deterministic central forecast, the per-level anomaly columns are
// prolongated to the fine grid and pooled with per-level weights
//
//   P ≈ Σ_l w_l · (1 / (n_l − 1)) · A_l A_lᵀ ,   Σ_l w_l = 1,
//
// which the differ realises by pre-scaling every stored column with
// s_l = sqrt(w_l · (N_tot − 1) / (n_l − 1)) so the existing global
// 1/√(N_tot − 1) normalisation lands each level on its target weight.
// Weights come from the *planned* per-level counts, so a column's bytes
// never depend on arrival order and the PR-4 determinism contract holds.
//
// Determinism ordering: global member ids are assigned level-major —
// level 0 (fine) owns ids 0..n_0−1, level 1 the next n_1, and so on —
// so the differ's canonical member-id sort IS the canonical
// (level, member) order, contiguous-prefix milestones always contain
// the fine columns, and the fault layer's exactly-once resolution is
// per (level, member) for free.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "linalg/matrix.hpp"
#include "ocean/hierarchy.hpp"
#include "ocean/model.hpp"

namespace essex::esse {

/// Mixed-resolution ensemble knobs, a sub-struct of CycleParams (and so
/// of ForecastRequest). levels == 1 is the single-level path and must
/// leave every downstream byte unchanged.
struct MultilevelParams {
  /// Grid levels including the fine one; 1 = classic single-level ESSE.
  std::size_t levels = 1;
  /// Horizontal coarsening factor between adjacent levels.
  std::size_t coarsen = 2;
  /// Planned members per level, fine first: members_per_level[l] runs on
  /// hierarchy level l. Size must equal `levels` when levels > 1; each
  /// entry is 0 (level unused) or >= 2 (a spread needs two members).
  std::vector<std::size_t> members_per_level;
  /// Optional pooling weights per level (normalised over the non-empty
  /// levels); empty = proportional to members_per_level, which treats
  /// the pooled columns as one big ensemble.
  std::vector<double> level_weights;
  /// Optional per-member cost ratios vs a fine member, for admission
  /// work-unit accounting; empty = the CFL default coarsen^(-3l).
  std::vector<double> cost_ratios;

  bool enabled() const { return levels > 1; }

  /// Σ members_per_level (members_per_level may be empty when disabled).
  std::size_t total_members() const;

  /// Global id of level `level`'s first member (level-major layout).
  std::size_t level_offset(std::size_t level) const;

  /// Level owning global member id `gid`.
  std::size_t level_of(std::size_t gid) const;

  /// Normalised pooling weight w_l (0 for empty levels).
  double weight(std::size_t level) const;

  /// Per-column scale s_l = sqrt(w_l (N_tot − 1) / (n_l − 1)). Exactly
  /// 1.0 when a single level holds every member, so a degenerate
  /// multilevel run collapses bitwise onto the single-level estimator.
  double column_weight(std::size_t level) const;

  /// Admission cost of one level-`level` member relative to fine: the
  /// cost_ratios override, or coarsen^(-3l) (¼ points × ½ steps per
  /// factor-2 coarsening under the advective CFL).
  double cost_ratio(std::size_t level) const;

  /// Total cost of the planned ensemble in fine-member units.
  double total_cost_units() const;
};

/// Everything the runner needs to execute coarse members: the grid
/// hierarchy, one OceanModel per coarse level (restricted climatology,
/// shared physics/forcing) and the per-level deterministic central
/// forecasts the anomalies are taken about. Immutable after
/// run_centrals(), so concurrent member workers share it freely.
class MultilevelEnsemble {
 public:
  /// Builds the hierarchy and the coarse-level models from the fine
  /// model. `params` must be enabled and validated.
  MultilevelEnsemble(const ocean::OceanModel& fine_model,
                     const MultilevelParams& params);

  const MultilevelParams& params() const { return params_; }
  const ocean::GridHierarchy& hierarchy() const { return hierarchy_; }

  /// The model integrating level `level`'s members (the fine model for
  /// level 0).
  const ocean::OceanModel& model(std::size_t level) const;

  /// Integrate the deterministic central forecast of every coarse level
  /// from the restricted fine initial condition. Call once, before any
  /// member_anomaly().
  void run_centrals(const la::Vector& fine_packed_initial, double t0_hours,
                    double forecast_hours);

  /// Level `level`'s packed central forecast (level >= 1; the fine
  /// central lives with the caller's differ).
  const la::Vector& central(std::size_t level) const;

  /// Finish one coarse member whose level-`level` forecast is
  /// `packed_forecast`: subtract the level central, prolongate the
  /// anomaly to the fine grid and scale by the level's column weight.
  /// The returned column is what the differ absorbs for this member.
  la::Vector fine_anomaly(std::size_t level,
                          const la::Vector& packed_forecast) const;

 private:
  MultilevelParams params_;
  const ocean::OceanModel& fine_model_;
  ocean::GridHierarchy hierarchy_;
  std::vector<std::unique_ptr<ocean::OceanModel>> coarse_models_;
  std::vector<la::Vector> centrals_;  ///< [level-1] packed, coarse grid
};

}  // namespace essex::esse
