// ESSEX: ESSE smoothing (paper ref. [16]: "Advanced interdisciplinary
// data assimilation: Filtering and smoothing via Error Subspace
// Statistical Estimation").
//
// Filtering only corrects the *present*; smoothing carries later data
// backward: given the ensemble anomalies at an earlier time t₀ and at
// the analysis time t₁ (same member ids), the statistical-linearised
// backward update is
//
//   x₀ˢ = x₀ + P₀₁ P₁⁺ (x₁ˢ − x₁ᶠ)  with  P₀₁ = A₀A₁ᵀ, P₁ = A₁A₁ᵀ,
//
// evaluated entirely in the ensemble space through the thin SVD of A₁:
// P₀₁P₁⁺ δ = A₀ V₁ Σ₁⁻¹ U₁ᵀ δ — no full-space covariance is formed.
#pragma once

#include "esse/differ.hpp"
#include "linalg/matrix.hpp"

namespace essex::esse {

/// Outcome of one backward smoothing step.
struct SmootherResult {
  la::Vector smoothed_state;  ///< x₀ˢ
  double increment_rms = 0;   ///< rms(x₀ˢ − x₀)
  /// Fraction of the present-time increment's energy captured by the
  /// ensemble subspace (1 = fully representable; small values mean the
  /// smoother could only act on part of the correction).
  double representable_fraction = 0;
};

/// Smooth the earlier state `past_state` using the present-time
/// correction `present_smoothed − present_forecast`.
///
/// `past` and `present` must hold anomalies for the SAME member ids (the
/// differ records them; order may differ — columns are matched by id).
/// Members present in only one snapshot are ignored; at least two common
/// members are required.
SmootherResult smooth_state(const SpreadSnapshot& past,
                            const la::Vector& past_state,
                            const SpreadSnapshot& present,
                            const la::Vector& present_forecast,
                            const la::Vector& present_smoothed,
                            double svd_rel_tol = 1e-8);

}  // namespace essex::esse
