#include "esse/analysis.hpp"

#include <cmath>

#include "common/error.hpp"
#include "linalg/chol.hpp"
#include "linalg/eig_sym.hpp"
#include "linalg/stats.hpp"

namespace essex::esse {

namespace {

/// The shared subspace-Kalman core: given HE = H·E (p×k), the innovation
/// d = yᵒ − H·x_f and diagonal R, produce the posterior mean/subspace.
AnalysisResult analyze_core(const la::Vector& forecast,
                            const ErrorSubspace& subspace,
                            const la::Matrix& he, const la::Vector& d,
                            const la::Vector& rvar) {
  const std::size_t k = subspace.rank();
  const std::size_t p = d.size();
  for (double rv : rvar) {
    ESSEX_REQUIRE(rv > 0.0, "observation noise variance must be positive");
  }

  // Information-form core: C = (Λ⁻¹ + HEᵀ R⁻¹ HE)⁻¹, computed as
  // C = B (I + Bᵀ G B)⁻¹ B with B = Λ^{1/2}, G = HEᵀ R⁻¹ HE.
  la::Matrix g(k, k);
  for (std::size_t a = 0; a < k; ++a) {
    for (std::size_t b = a; b < k; ++b) {
      double s = 0.0;
      for (std::size_t i = 0; i < p; ++i)
        s += he(i, a) * he(i, b) / rvar[i];
      g(a, b) = s;
      g(b, a) = s;
    }
  }
  la::Matrix inner = la::Matrix::identity(k);
  const la::Vector& sig = subspace.sigmas();
  for (std::size_t a = 0; a < k; ++a)
    for (std::size_t b = 0; b < k; ++b)
      inner(a, b) += sig[a] * g(a, b) * sig[b];
  la::Matrix bmat(k, k);
  for (std::size_t a = 0; a < k; ++a) bmat(a, a) = sig[a];
  la::Matrix inner_inv_b = la::cholesky_solve(inner, bmat);  // inner⁻¹ B
  la::Matrix c = la::matmul(bmat, inner_inv_b);              // B inner⁻¹ B

  // w = C · HEᵀ R⁻¹ d (subspace coefficients of the increment).
  la::Vector rhs(k, 0.0);
  for (std::size_t a = 0; a < k; ++a) {
    double s = 0.0;
    for (std::size_t i = 0; i < p; ++i) s += he(i, a) * d[i] / rvar[i];
    rhs[a] = s;
  }
  const la::Vector w = la::matvec(c, rhs);

  AnalysisResult out;
  out.posterior_state = forecast;
  const la::Vector incr = subspace.expand(w);
  for (std::size_t i = 0; i < out.posterior_state.size(); ++i)
    out.posterior_state[i] += incr[i];

  // Posterior subspace from the symmetric eigendecomposition of C.
  la::EigSym eig = la::eig_sym(c);
  std::size_t keep = 0;
  while (keep < k && eig.eigenvalues[keep] >
                         1e-14 * std::max(eig.eigenvalues[0], 1e-300)) {
    ++keep;
  }
  keep = std::max<std::size_t>(keep, 1);
  la::Matrix post_modes =
      la::matmul(subspace.modes(), eig.eigenvectors.first_cols(keep));
  la::Vector post_sig(keep);
  for (std::size_t j = 0; j < keep; ++j)
    post_sig[j] = std::sqrt(std::max(eig.eigenvalues[j], 0.0));
  out.posterior_subspace =
      ErrorSubspace(std::move(post_modes), std::move(post_sig));

  out.prior_innovation_rms = la::rms(d);
  out.prior_trace = subspace.total_variance();
  out.posterior_trace = out.posterior_subspace.total_variance();
  return out;
}

}  // namespace

AnalysisResult analyze(const la::Vector& forecast,
                       const ErrorSubspace& subspace,
                       const obs::ObsOperator& h) {
  ESSEX_REQUIRE(!subspace.empty(), "analysis needs a non-empty subspace");
  ESSEX_REQUIRE(h.count() > 0, "analysis needs at least one observation");
  ESSEX_REQUIRE(forecast.size() == subspace.dim(),
                "forecast dimension does not match the subspace");

  const std::size_t k = subspace.rank();
  la::Matrix he(h.count(), k);
  for (std::size_t j = 0; j < k; ++j) {
    he.set_col(j, h.apply_mode(subspace.modes(), j));
  }
  AnalysisResult out = analyze_core(forecast, subspace, he,
                                    h.innovation(forecast),
                                    h.noise_variances());
  out.posterior_innovation_rms = la::rms(h.innovation(out.posterior_state));
  return out;
}

AnalysisResult analyze_linear(const la::Vector& forecast,
                              const ErrorSubspace& subspace,
                              const std::vector<LinearObservation>& obs) {
  ESSEX_REQUIRE(!subspace.empty(), "analysis needs a non-empty subspace");
  ESSEX_REQUIRE(!obs.empty(), "analysis needs at least one observation");
  ESSEX_REQUIRE(forecast.size() == subspace.dim(),
                "forecast dimension does not match the subspace");

  const std::size_t p = obs.size();
  const std::size_t k = subspace.rank();

  auto apply = [&](const la::Vector& x, std::size_t i) {
    double s = 0.0;
    for (const auto& [idx, w] : obs[i].stencil) {
      ESSEX_REQUIRE(idx < x.size(), "stencil index out of range");
      s += w * x[idx];
    }
    return s;
  };

  la::Matrix he(p, k);
  for (std::size_t i = 0; i < p; ++i) {
    for (std::size_t j = 0; j < k; ++j) {
      double s = 0.0;
      for (const auto& [idx, w] : obs[i].stencil) {
        ESSEX_REQUIRE(idx < subspace.dim(), "stencil index out of range");
        s += w * subspace.modes()(idx, j);
      }
      he(i, j) = s;
    }
  }
  la::Vector d(p), rvar(p);
  for (std::size_t i = 0; i < p; ++i) {
    d[i] = obs[i].value - apply(forecast, i);
    rvar[i] = obs[i].variance;
  }
  AnalysisResult out = analyze_core(forecast, subspace, he, d, rvar);
  la::Vector d_post(p);
  for (std::size_t i = 0; i < p; ++i)
    d_post[i] = obs[i].value - apply(out.posterior_state, i);
  out.posterior_innovation_rms = la::rms(d_post);
  return out;
}

}  // namespace essex::esse
