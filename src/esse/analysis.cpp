#include "esse/analysis.hpp"

#include <cmath>

#include "common/error.hpp"
#include "esse/local_analysis.hpp"
#include "linalg/chol.hpp"
#include "linalg/eig_sym.hpp"
#include "linalg/stats.hpp"

namespace essex::esse {

namespace detail {

la::Matrix posterior_core(const la::Vector& sigmas, const la::Matrix& g) {
  const std::size_t k = sigmas.size();
  la::Matrix inner = la::Matrix::identity(k);
  for (std::size_t a = 0; a < k; ++a)
    for (std::size_t b = 0; b < k; ++b)
      inner(a, b) += sigmas[a] * g(a, b) * sigmas[b];
  la::Matrix bmat(k, k);
  for (std::size_t a = 0; a < k; ++a) bmat(a, a) = sigmas[a];
  la::Matrix inner_inv_b = la::cholesky_solve(inner, bmat);  // inner⁻¹ B
  return la::matmul(bmat, inner_inv_b);                      // B inner⁻¹ B
}

std::size_t kept_rank(const la::Vector& eigenvalues) {
  std::size_t keep = 0;
  while (keep < eigenvalues.size() &&
         eigenvalues[keep] > 1e-14 * std::max(eigenvalues[0], 1e-300)) {
    ++keep;
  }
  return std::max<std::size_t>(keep, 1);
}

}  // namespace detail

double gaspari_cohn(double dist, double half_support) {
  if (half_support <= 0.0) return dist == 0.0 ? 1.0 : 0.0;
  const double r = dist / half_support;
  if (r >= 2.0) return 0.0;
  const double r2 = r * r, r3 = r2 * r, r4 = r3 * r, r5 = r4 * r;
  if (r < 1.0) {
    return -0.25 * r5 + 0.5 * r4 + 0.625 * r3 - 5.0 / 3.0 * r2 + 1.0;
  }
  return r5 / 12.0 - 0.5 * r4 + 0.625 * r3 + 5.0 / 3.0 * r2 - 5.0 * r +
         4.0 - 2.0 / (3.0 * r);
}

namespace {

/// The global subspace-Kalman update: given HE = H·E (p×k), the
/// innovation d = yᵒ − H·x_f and diagonal R, produce the posterior
/// mean/subspace.
AnalysisResult analyze_core(const la::Vector& forecast,
                            const ErrorSubspace& subspace,
                            const la::Matrix& he, const la::Vector& d,
                            const la::Vector& rvar) {
  const std::size_t k = subspace.rank();
  const std::size_t p = d.size();
  for (double rv : rvar) {
    ESSEX_REQUIRE(rv > 0.0, "observation noise variance must be positive");
  }

  // Information-form core: C = (Λ⁻¹ + HEᵀ R⁻¹ HE)⁻¹, computed as
  // C = B (I + Bᵀ G B)⁻¹ B with B = Λ^{1/2}, G = HEᵀ R⁻¹ HE.
  la::Matrix g(k, k);
  for (std::size_t a = 0; a < k; ++a) {
    for (std::size_t b = a; b < k; ++b) {
      double s = 0.0;
      for (std::size_t i = 0; i < p; ++i)
        s += he(i, a) * he(i, b) / rvar[i];
      g(a, b) = s;
      g(b, a) = s;
    }
  }
  la::Matrix c = detail::posterior_core(subspace.sigmas(), g);

  // w = C · HEᵀ R⁻¹ d (subspace coefficients of the increment).
  la::Vector rhs(k, 0.0);
  for (std::size_t a = 0; a < k; ++a) {
    double s = 0.0;
    for (std::size_t i = 0; i < p; ++i) s += he(i, a) * d[i] / rvar[i];
    rhs[a] = s;
  }
  const la::Vector w = la::matvec(c, rhs);

  AnalysisResult out;
  out.posterior_state = forecast;
  const la::Vector incr = subspace.expand(w);
  for (std::size_t i = 0; i < out.posterior_state.size(); ++i)
    out.posterior_state[i] += incr[i];

  // Posterior subspace from the symmetric eigendecomposition of C.
  la::EigSym eig = la::eig_sym(c);
  const std::size_t keep = detail::kept_rank(eig.eigenvalues);
  la::Matrix post_modes =
      la::matmul(subspace.modes(), eig.eigenvectors.first_cols(keep));
  la::Vector post_sig(keep);
  for (std::size_t j = 0; j < keep; ++j)
    post_sig[j] = std::sqrt(std::max(eig.eigenvalues[j], 0.0));
  out.posterior_subspace =
      ErrorSubspace(std::move(post_modes), std::move(post_sig));

  out.prior_innovation_rms = la::rms(d);
  out.prior_trace = subspace.total_variance();
  out.posterior_trace = out.posterior_subspace.total_variance();
  return out;
}

/// The historical dense path over the whole domain. The HE/innovation
/// arithmetic accumulates in stencil order, exactly as the ObsOperator
/// and analyze_linear front ends did, so results are bitwise unchanged
/// through the ObsSet adapters.
AnalysisResult analyze_global(const la::Vector& forecast,
                              const ErrorSubspace& subspace,
                              const ObsSet& obs) {
  const std::size_t p = obs.size();
  const std::size_t k = subspace.rank();

  la::Matrix he(p, k);
  for (std::size_t i = 0; i < p; ++i)
    for (std::size_t j = 0; j < k; ++j)
      he(i, j) = obs.apply_mode(i, subspace.modes(), j);
  la::Vector d = obs.innovations(forecast);
  la::Vector rvar(p);
  for (std::size_t i = 0; i < p; ++i) rvar[i] = obs.entry(i).variance;

  AnalysisResult out = analyze_core(forecast, subspace, he, d, rvar);
  out.posterior_innovation_rms =
      la::rms(obs.innovations(out.posterior_state));
  return out;
}

}  // namespace

AnalysisResult analyze(const la::Vector& forecast,
                       const ErrorSubspace& subspace, const ObsSet& obs,
                       const AnalysisOptions& options) {
  ESSEX_REQUIRE(!subspace.empty(), "analysis needs a non-empty subspace");
  ESSEX_REQUIRE(!obs.empty(), "analysis needs at least one observation");
  ESSEX_REQUIRE(forecast.size() == subspace.dim(),
                "forecast dimension does not match the subspace");

  if (!options.localization.enabled) return analyze_global(forecast, subspace, obs);

  ESSEX_REQUIRE(options.grid != nullptr,
                "localized analysis needs grid geometry");
  ESSEX_REQUIRE(options.localization.radius_km > 0.0,
                "localization radius must be positive");
  const ocean::Tiling tiling(*options.grid, options.tiling);
  ESSEX_REQUIRE(tiling.packed_size() == forecast.size(),
                "grid packed size does not match the state");
  if (options.threads > 1) {
    ThreadPool pool(options.threads);
    return analyze_tiled(forecast, subspace, obs, tiling,
                         options.localization, &pool);
  }
  return analyze_tiled(forecast, subspace, obs, tiling, options.localization,
                       nullptr);
}

AnalysisResult analyze(const la::Vector& forecast,
                       const ErrorSubspace& subspace,
                       const obs::ObsOperator& h) {
  ESSEX_REQUIRE(h.count() > 0, "analysis needs at least one observation");
  return analyze(forecast, subspace, ObsSet::from_operator(h));
}

AnalysisResult analyze_linear(const la::Vector& forecast,
                              const ErrorSubspace& subspace,
                              const std::vector<LinearObservation>& obs) {
  return analyze(forecast, subspace, ObsSet::from_linear(obs));
}

}  // namespace essex::esse
