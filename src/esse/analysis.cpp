#include "esse/analysis.hpp"

#include <algorithm>
#include <cmath>
#include <future>
#include <utility>

#include "common/error.hpp"
#include "common/telemetry.hpp"
#include "common/thread_pool.hpp"
#include "esse/local_analysis.hpp"
#include "linalg/chol.hpp"
#include "linalg/eig_sym.hpp"
#include "linalg/stats.hpp"
#include "ocean/state.hpp"

namespace essex::esse {

const char* to_string(AnalysisMethod method) {
  switch (method) {
    case AnalysisMethod::kSubspaceKalman:
      return "subspace_kalman";
    case AnalysisMethod::kEtkf:
      return "etkf";
    case AnalysisMethod::kEsrf:
      return "esrf";
    case AnalysisMethod::kMultiModel:
      return "multi_model";
  }
  return "unknown";
}

const std::vector<AnalysisMethod>& analysis_method_registry() {
  static const std::vector<AnalysisMethod> kRegistry = {
      AnalysisMethod::kSubspaceKalman, AnalysisMethod::kEtkf,
      AnalysisMethod::kEsrf, AnalysisMethod::kMultiModel};
  return kRegistry;
}

bool is_registered(AnalysisMethod method) {
  const auto& reg = analysis_method_registry();
  return std::find(reg.begin(), reg.end(), method) != reg.end();
}

std::optional<AnalysisMethod> parse_analysis_method(std::string_view name) {
  for (const AnalysisMethod m : analysis_method_registry())
    if (name == to_string(m)) return m;
  return std::nullopt;
}

namespace detail {

la::Matrix posterior_core(const la::Vector& sigmas, const la::Matrix& g) {
  const std::size_t k = sigmas.size();
  la::Matrix inner = la::Matrix::identity(k);
  for (std::size_t a = 0; a < k; ++a)
    for (std::size_t b = 0; b < k; ++b)
      inner(a, b) += sigmas[a] * g(a, b) * sigmas[b];
  la::Matrix bmat(k, k);
  for (std::size_t a = 0; a < k; ++a) bmat(a, a) = sigmas[a];
  la::Matrix inner_inv_b = la::cholesky_solve(inner, bmat);  // inner⁻¹ B
  return la::matmul(bmat, inner_inv_b);                      // B inner⁻¹ B
}

std::size_t kept_rank(const la::Vector& eigenvalues) {
  std::size_t keep = 0;
  while (keep < eigenvalues.size() &&
         eigenvalues[keep] > 1e-14 * std::max(eigenvalues[0], 1e-300)) {
    ++keep;
  }
  return std::max<std::size_t>(keep, 1);
}

void etkf_solve(const la::Vector& sigmas, const la::Matrix& g,
                const la::Vector& rhs, la::Vector& w, la::Matrix& smat) {
  const std::size_t k = sigmas.size();
  // A = Bᵀ G B in coefficient space; its eigenpairs (V, Γ) define the
  // transform T = V (I+Γ)⁻¹ Vᵀ with C = B T B the Kalman core.
  la::Matrix a(k, k);
  for (std::size_t i = 0; i < k; ++i)
    for (std::size_t j = 0; j < k; ++j)
      a(i, j) = sigmas[i] * g(i, j) * sigmas[j];
  la::EigSym eig = la::eig_sym(a);
  la::Vector inv_one(k), inv_half(k);
  for (std::size_t j = 0; j < k; ++j) {
    const double gamma = std::max(eig.eigenvalues[j], 0.0);
    inv_one[j] = 1.0 / (1.0 + gamma);
    inv_half[j] = 1.0 / std::sqrt(1.0 + gamma);
  }

  // w = B V (I+Γ)⁻¹ Vᵀ B rhs.
  la::Vector br(k), vt(k);
  for (std::size_t j = 0; j < k; ++j) br[j] = sigmas[j] * rhs[j];
  for (std::size_t j = 0; j < k; ++j) {
    double s = 0.0;
    for (std::size_t i = 0; i < k; ++i)
      s += eig.eigenvectors(i, j) * br[i];
    vt[j] = s * inv_one[j];
  }
  w.assign(k, 0.0);
  for (std::size_t i = 0; i < k; ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < k; ++j)
      s += eig.eigenvectors(i, j) * vt[j];
    w[i] = sigmas[i] * s;
  }

  // S = B·T^{1/2} with the symmetric square root T^{1/2} =
  // V (I+Γ)^{-1/2} Vᵀ — a spectral function of A, so eigenvector sign
  // conventions cancel and S is canonical without explicit sign fixing.
  smat = la::Matrix(k, k);
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = 0; j < k; ++j) {
      double s = 0.0;
      for (std::size_t t = 0; t < k; ++t)
        s += eig.eigenvectors(i, t) * inv_half[t] * eig.eigenvectors(j, t);
      smat(i, j) = sigmas[i] * s;
    }
  }
}

void esrf_solve(const la::Vector& sigmas, const la::Matrix& he,
                const la::Vector& d, const la::Vector& rvar,
                const std::vector<std::pair<std::size_t, double>>& local,
                la::Vector& w, la::Matrix& smat) {
  const std::size_t k = sigmas.size();
  w.assign(k, 0.0);
  smat = la::Matrix(k, k);
  for (std::size_t j = 0; j < k; ++j) smat(j, j) = sigmas[j];
  la::Vector shat(k), ws(k);
  for (const auto& [i, taper] : local) {
    const double r = rvar[i] / taper;  // taper ∈ (0, 1]: inflated noise
    const double* row = he.data().data() + i * he.cols();
    // ŝ = Wᵀh: the observation's footprint on the factor's columns.
    for (std::size_t j = 0; j < k; ++j) {
      double s = 0.0;
      for (std::size_t a = 0; a < k; ++a) s += row[a] * smat(a, j);
      shat[j] = s;
    }
    double e = 0.0;
    for (std::size_t j = 0; j < k; ++j) e += shat[j] * shat[j];
    const double f = e + r;  // innovation variance of this scalar
    double di = d[i];
    for (std::size_t a = 0; a < k; ++a) di -= row[a] * w[a];
    // Mean: K = Wŝ/f. Factor: Potter's rank-one downdate
    // W ← W(I − β ŝŝᵀ) with β = 1/(f + √(rf)), the exact square root
    // of (I − ŝŝᵀ/f).
    for (std::size_t a = 0; a < k; ++a) {
      double s = 0.0;
      for (std::size_t j = 0; j < k; ++j) s += smat(a, j) * shat[j];
      ws[a] = s;
    }
    const double gain = di / f;
    for (std::size_t a = 0; a < k; ++a) w[a] += ws[a] * gain;
    const double beta = 1.0 / (f + std::sqrt(r * f));
    for (std::size_t a = 0; a < k; ++a)
      for (std::size_t j = 0; j < k; ++j)
        smat(a, j) -= beta * ws[a] * shat[j];
  }
}

}  // namespace detail

double gaspari_cohn(double dist, double half_support) {
  if (half_support <= 0.0) return dist == 0.0 ? 1.0 : 0.0;
  const double r = dist / half_support;
  if (r >= 2.0) return 0.0;
  const double r2 = r * r, r3 = r2 * r, r4 = r3 * r, r5 = r4 * r;
  if (r < 1.0) {
    return -0.25 * r5 + 0.5 * r4 + 0.625 * r3 - 5.0 / 3.0 * r2 + 1.0;
  }
  return r5 / 12.0 - 0.5 * r4 + 0.625 * r3 + 5.0 / 3.0 * r2 - 5.0 * r +
         4.0 - 2.0 / (3.0 * r);
}

namespace {

/// G = HEᵀ R⁻¹ HE, accumulated exactly as the historical global update
/// did (upper triangle row-by-row, mirrored) — extracted so the ETKF
/// shares the identical arithmetic.
la::Matrix obs_gram(const la::Matrix& he, const la::Vector& rvar) {
  const std::size_t p = he.rows();
  const std::size_t k = he.cols();
  la::Matrix g(k, k);
  for (std::size_t a = 0; a < k; ++a) {
    for (std::size_t b = a; b < k; ++b) {
      double s = 0.0;
      for (std::size_t i = 0; i < p; ++i)
        s += he(i, a) * he(i, b) / rvar[i];
      g(a, b) = s;
      g(b, a) = s;
    }
  }
  return g;
}

/// HEᵀ R⁻¹ d — same extraction.
la::Vector obs_rhs(const la::Matrix& he, const la::Vector& d,
                   const la::Vector& rvar) {
  const std::size_t p = he.rows();
  const std::size_t k = he.cols();
  la::Vector rhs(k, 0.0);
  for (std::size_t a = 0; a < k; ++a) {
    double s = 0.0;
    for (std::size_t i = 0; i < p; ++i) s += he(i, a) * d[i] / rvar[i];
    rhs[a] = s;
  }
  return rhs;
}

/// The global subspace-Kalman update: given HE = H·E (p×k), the
/// innovation d = yᵒ − H·x_f and diagonal R, produce the posterior
/// mean/subspace.
AnalysisResult analyze_core(const la::Vector& forecast,
                            const ErrorSubspace& subspace,
                            const la::Matrix& he, const la::Vector& d,
                            const la::Vector& rvar) {
  const std::size_t k = subspace.rank();
  for (double rv : rvar) {
    ESSEX_REQUIRE(rv > 0.0, "observation noise variance must be positive");
  }

  // Information-form core: C = (Λ⁻¹ + HEᵀ R⁻¹ HE)⁻¹, computed as
  // C = B (I + Bᵀ G B)⁻¹ B with B = Λ^{1/2}, G = HEᵀ R⁻¹ HE.
  la::Matrix g = obs_gram(he, rvar);
  la::Matrix c = detail::posterior_core(subspace.sigmas(), g);

  // w = C · HEᵀ R⁻¹ d (subspace coefficients of the increment).
  la::Vector rhs = obs_rhs(he, d, rvar);
  const la::Vector w = la::matvec(c, rhs);

  AnalysisResult out;
  out.posterior_state = forecast;
  const la::Vector incr = subspace.expand(w);
  for (std::size_t i = 0; i < out.posterior_state.size(); ++i)
    out.posterior_state[i] += incr[i];

  // Posterior subspace from the symmetric eigendecomposition of C.
  la::EigSym eig = la::eig_sym(c);
  const std::size_t keep = detail::kept_rank(eig.eigenvalues);
  la::Matrix post_modes =
      la::matmul(subspace.modes(), eig.eigenvectors.first_cols(keep));
  la::Vector post_sig(keep);
  for (std::size_t j = 0; j < keep; ++j)
    post_sig[j] = std::sqrt(std::max(eig.eigenvalues[j], 0.0));
  out.posterior_subspace =
      ErrorSubspace(std::move(post_modes), std::move(post_sig));

  out.prior_innovation_rms = la::rms(d);
  out.prior_trace = subspace.total_variance();
  out.posterior_trace = out.posterior_subspace.total_variance();
  return out;
}

/// Epilogue of the square-root methods: mean update from w plus the
/// posterior subspace from the k×k factor S (C = S·Sᵀ) by the method of
/// snapshots — P_a = (E S)(E S)ᵀ, so the posterior modes are
/// E·S·V̂·Λ̂^{-1/2} with (V̂, Λ̂) the eigenpairs of SᵀS.
AnalysisResult finish_sqrt(const la::Vector& forecast,
                           const ErrorSubspace& subspace,
                           const la::Vector& w, const la::Matrix& smat,
                           const la::Vector& d) {
  const std::size_t k = subspace.rank();
  AnalysisResult out;
  out.posterior_state = forecast;
  const la::Vector incr = subspace.expand(w);
  for (std::size_t i = 0; i < out.posterior_state.size(); ++i)
    out.posterior_state[i] += incr[i];

  la::Matrix gram(k, k);
  for (std::size_t a = 0; a < k; ++a) {
    for (std::size_t b = a; b < k; ++b) {
      double s = 0.0;
      for (std::size_t j = 0; j < k; ++j) s += smat(j, a) * smat(j, b);
      gram(a, b) = s;
      gram(b, a) = s;
    }
  }
  la::EigSym eig = la::eig_sym(gram);
  const std::size_t keep = detail::kept_rank(eig.eigenvalues);
  la::Vector post_sig(keep);
  la::Matrix coeff(k, keep);  // S·V̂·Λ̂^{-1/2}
  for (std::size_t j = 0; j < keep; ++j) {
    post_sig[j] = std::sqrt(std::max(eig.eigenvalues[j], 0.0));
    const double inv = post_sig[j] > 0.0 ? 1.0 / post_sig[j] : 0.0;
    for (std::size_t a = 0; a < k; ++a) {
      double s = 0.0;
      for (std::size_t b = 0; b < k; ++b)
        s += smat(a, b) * eig.eigenvectors(b, j);
      coeff(a, j) = s * inv;
    }
  }
  la::Matrix post_modes = la::matmul(subspace.modes(), coeff);
  out.posterior_subspace =
      ErrorSubspace(std::move(post_modes), std::move(post_sig));

  out.prior_innovation_rms = la::rms(d);
  out.prior_trace = subspace.total_variance();
  out.posterior_trace = out.posterior_subspace.total_variance();
  return out;
}

/// Fill HE = H·E. Serial when one worker (the pre-refactor loop, bit for
/// bit); otherwise contiguous row blocks fan out over a pool — every
/// entry is computed by the same per-entry stencil accumulation into a
/// disjoint slot, so the parallel build is bitwise identical to the
/// serial one.
void build_he(la::Matrix& he, const ObsSet& obs, const la::Matrix& modes,
              std::size_t workers) {
  const std::size_t p = he.rows();
  const std::size_t k = he.cols();
  if (workers <= 1) {
    for (std::size_t i = 0; i < p; ++i)
      for (std::size_t j = 0; j < k; ++j)
        he(i, j) = obs.apply_mode(i, modes, j);
    return;
  }
  ThreadPool pool(workers);
  const std::size_t block = (p + workers - 1) / workers;
  std::vector<std::future<void>> futs;
  futs.reserve(workers);
  for (std::size_t lo = 0; lo < p; lo += block) {
    const std::size_t hi = std::min(lo + block, p);
    futs.push_back(pool.submit([&he, &obs, &modes, lo, hi, k] {
      for (std::size_t i = lo; i < hi; ++i)
        for (std::size_t j = 0; j < k; ++j)
          he(i, j) = obs.apply_mode(i, modes, j);
    }));
  }
  for (auto& f : futs) f.get();
}

/// The historical dense path over the whole domain, generalized over the
/// self-contained methods. The HE/innovation arithmetic accumulates in
/// stencil order, exactly as the ObsOperator and analyze_linear front
/// ends did, so the default method stays bitwise unchanged through the
/// ObsSet adapters.
AnalysisResult analyze_global(const la::Vector& forecast,
                              const ErrorSubspace& subspace,
                              const ObsSet& obs,
                              const AnalysisOptions& options) {
  const std::size_t p = obs.size();
  const std::size_t k = subspace.rank();

  const std::size_t workers =
      std::min(std::max<std::size_t>(options.threads, 1), p);
  la::Matrix he(p, k);
  build_he(he, obs, subspace.modes(), workers);
  if (options.sink) {
    options.sink->gauge_set("analysis.threads",
                            static_cast<double>(workers));
  }
  la::Vector d = obs.innovations(forecast);
  la::Vector rvar(p);
  for (std::size_t i = 0; i < p; ++i) {
    rvar[i] = obs.entry(i).variance;
    ESSEX_REQUIRE(rvar[i] > 0.0,
                  "observation noise variance must be positive");
  }

  AnalysisResult out;
  switch (options.method) {
    case AnalysisMethod::kSubspaceKalman:
      out = analyze_core(forecast, subspace, he, d, rvar);
      break;
    case AnalysisMethod::kEtkf: {
      const la::Matrix g = obs_gram(he, rvar);
      const la::Vector rhs = obs_rhs(he, d, rvar);
      la::Vector w;
      la::Matrix smat;
      detail::etkf_solve(subspace.sigmas(), g, rhs, w, smat);
      out = finish_sqrt(forecast, subspace, w, smat, d);
      break;
    }
    case AnalysisMethod::kEsrf: {
      std::vector<std::pair<std::size_t, double>> all(p);
      for (std::size_t i = 0; i < p; ++i) all[i] = {i, 1.0};
      la::Vector w;
      la::Matrix smat;
      detail::esrf_solve(subspace.sigmas(), he, d, rvar, all, w, smat);
      out = finish_sqrt(forecast, subspace, w, smat, d);
      break;
    }
    default:
      ESSEX_REQUIRE(false,
                    "analysis method is not self-contained on the "
                    "global path");
  }
  out.posterior_innovation_rms =
      la::rms(obs.innovations(out.posterior_state));
  return out;
}

}  // namespace

ObsSet with_pseudo_observations(const ErrorSubspace& subspace,
                                const ObsSet& obs,
                                const AnalysisOptions& options) {
  const MultiModelObs& mm = options.multi_model;
  ESSEX_REQUIRE(mm.surrogate != nullptr,
                "multi-model analysis needs a surrogate forecast");
  ESSEX_REQUIRE(mm.surrogate->size() == subspace.dim(),
                "surrogate forecast dimension does not match the state");
  ESSEX_REQUIRE(mm.stride >= 1,
                "pseudo-observation stride must be >= 1");
  ESSEX_REQUIRE(mm.variance_inflation > 0.0,
                "pseudo-observation variance inflation must be positive");
  ESSEX_REQUIRE(mm.variance_floor >= 0.0,
                "pseudo-observation variance floor must be >= 0");

  const std::size_t m = subspace.dim();
  const la::Vector marg = subspace.marginal_stddev();
  // Pseudo-observations carry grid positions when the geometry is known
  // (so localization tapers them like real data); otherwise they stay
  // unpositioned and reach every tile, like any generic linear stencil.
  const ocean::Grid3D* grid = options.grid;
  if (grid != nullptr && ocean::OceanState::packed_size(*grid) != m)
    grid = nullptr;

  std::vector<ObsEntry> entries = obs.entries();
  entries.reserve(entries.size() + m / mm.stride + 1);
  for (std::size_t idx = 0; idx < m; idx += mm.stride) {
    ObsEntry e;
    e.stencil = {{idx, 1.0}};
    e.value = (*mm.surrogate)[idx];
    e.variance =
        mm.variance_inflation * marg[idx] * marg[idx] + mm.variance_floor;
    if (grid != nullptr) {
      // Packed layout [T, S, u, v, ssh], 3-D fields iz-major then iy, ix.
      const std::size_t points = grid->points();
      const std::size_t plane = grid->nx() * grid->ny();
      const std::size_t h =
          idx < 4 * points ? (idx % points) % plane : idx - 4 * points;
      e.positioned = true;
      e.x_km = static_cast<double>(h % grid->nx()) * grid->dx_km();
      e.y_km = static_cast<double>(h / grid->nx()) * grid->dy_km();
    }
    entries.push_back(std::move(e));
  }
  return ObsSet(std::move(entries));
}

AnalysisResult analyze(const la::Vector& forecast,
                       const ErrorSubspace& subspace, const ObsSet& obs,
                       const AnalysisOptions& options) {
  ESSEX_REQUIRE(is_registered(options.method),
                "analysis method is not registered");
  ESSEX_REQUIRE(!subspace.empty(), "analysis needs a non-empty subspace");
  ESSEX_REQUIRE(!obs.empty(), "analysis needs at least one observation");
  ESSEX_REQUIRE(forecast.size() == subspace.dim(),
                "forecast dimension does not match the subspace");

  if (options.method == AnalysisMethod::kMultiModel) {
    // The combiner is a front end over the subspace-Kalman core: append
    // the surrogate's pseudo-observations (canonical ascending index
    // order, after the real data) and recurse. The recursion inherits
    // localization/threads, so the combined set runs tiled when asked.
    const ObsSet combined = with_pseudo_observations(subspace, obs, options);
    if (options.sink) {
      options.sink->count("analysis.method.multi_model");
      options.sink->count("analysis.observations",
                          static_cast<double>(obs.size()));
      options.sink->count("analysis.pseudo_observations",
                          static_cast<double>(combined.size() - obs.size()));
    }
    AnalysisOptions base = options;
    base.method = AnalysisMethod::kSubspaceKalman;
    base.multi_model = MultiModelObs{};
    base.sink = nullptr;  // counted above; don't double-count the core
    return analyze(forecast, subspace, combined, base);
  }

  if (options.sink) {
    options.sink->count(std::string("analysis.method.") +
                        to_string(options.method));
    options.sink->count("analysis.observations",
                        static_cast<double>(obs.size()));
  }

  // The ESRF is the one order-dependent method: pin the serial sweep to
  // the canonical content order so digests cannot depend on how the
  // batch was assembled (§10).
  const bool canonicalize = options.method == AnalysisMethod::kEsrf;
  const ObsSet canon = canonicalize ? canonical_obs_order(obs) : ObsSet();
  const ObsSet& use = canonicalize ? canon : obs;

  if (!options.localization.enabled)
    return analyze_global(forecast, subspace, use, options);

  ESSEX_REQUIRE(options.grid != nullptr,
                "localized analysis needs grid geometry");
  ESSEX_REQUIRE(options.localization.radius_km > 0.0,
                "localization radius must be positive");
  const ocean::Tiling tiling(*options.grid, options.tiling);
  ESSEX_REQUIRE(tiling.packed_size() == forecast.size(),
                "grid packed size does not match the state");
  if (options.threads > 1) {
    ThreadPool pool(options.threads);
    return analyze_tiled(forecast, subspace, use, tiling,
                         options.localization, &pool, options.method);
  }
  return analyze_tiled(forecast, subspace, use, tiling, options.localization,
                       nullptr, options.method);
}

AnalysisResult analyze(const la::Vector& forecast,
                       const ErrorSubspace& subspace,
                       const obs::ObsOperator& h,
                       const AnalysisOptions& options) {
  ESSEX_REQUIRE(h.count() > 0, "analysis needs at least one observation");
  return analyze(forecast, subspace, ObsSet::from_operator(h), options);
}

AnalysisResult analyze_linear(const la::Vector& forecast,
                              const ErrorSubspace& subspace,
                              const std::vector<LinearObservation>& obs,
                              const AnalysisOptions& options) {
  return analyze(forecast, subspace, ObsSet::from_linear(obs), options);
}

}  // namespace essex::esse
