// ESSEX: error-subspace product files (the workflow's "covariance
// file"). Same ESXF container as ocean/state_io.hpp; see that header for
// the format rationale.
#pragma once

#include <iosfwd>
#include <string>

#include "esse/error_subspace.hpp"

namespace essex::esse {

/// Write an error subspace (modes + sigmas). Overwrites.
/// Throws essex::Error on I/O failure.
void save_subspace(const std::string& path, const ErrorSubspace& subspace);

/// Stream variant: append the ESXF subspace record to `out`. The byte
/// layout is identical to the file variant, so in-memory serializations
/// (the determinism digests of DESIGN.md §10) and on-disk products hash
/// the same.
void save_subspace(std::ostream& out, const ErrorSubspace& subspace);

/// Read a subspace saved by save_subspace().
ErrorSubspace load_subspace(const std::string& path);

/// Stream variant; `name` labels the source in error messages.
ErrorSubspace load_subspace(std::istream& in,
                            const std::string& name = "<stream>");

}  // namespace essex::esse
