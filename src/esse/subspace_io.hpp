// ESSEX: error-subspace product files (the workflow's "covariance
// file"). Same ESXF container as ocean/state_io.hpp; see that header for
// the format rationale.
#pragma once

#include <string>

#include "esse/error_subspace.hpp"

namespace essex::esse {

/// Write an error subspace (modes + sigmas). Overwrites.
/// Throws essex::Error on I/O failure.
void save_subspace(const std::string& path, const ErrorSubspace& subspace);

/// Read a subspace saved by save_subspace().
ErrorSubspace load_subspace(const std::string& path);

}  // namespace essex::esse
