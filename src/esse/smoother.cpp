#include "esse/smoother.hpp"

#include <algorithm>
#include <unordered_map>

#include "common/error.hpp"
#include "linalg/stats.hpp"
#include "linalg/svd.hpp"

namespace essex::esse {

SmootherResult smooth_state(const SpreadSnapshot& past,
                            const la::Vector& past_state,
                            const SpreadSnapshot& present,
                            const la::Vector& present_forecast,
                            const la::Vector& present_smoothed,
                            double svd_rel_tol) {
  ESSEX_REQUIRE(past.anomalies.rows() == past_state.size(),
                "past snapshot does not match the past state");
  ESSEX_REQUIRE(present.anomalies.rows() == present_forecast.size() &&
                    present_forecast.size() == present_smoothed.size(),
                "present snapshot/state shape mismatch");

  // Match member columns by id (completion order may differ between the
  // two times — §4.1's order-free bookkeeping).
  std::unordered_map<std::size_t, std::size_t> present_col;
  for (std::size_t c = 0; c < present.member_ids.size(); ++c)
    present_col.emplace(present.member_ids[c], c);
  std::vector<std::size_t> past_cols, pres_cols;
  for (std::size_t c = 0; c < past.member_ids.size(); ++c) {
    auto it = present_col.find(past.member_ids[c]);
    if (it == present_col.end()) continue;
    past_cols.push_back(c);
    pres_cols.push_back(it->second);
  }
  ESSEX_REQUIRE(past_cols.size() >= 2,
                "need at least two common ensemble members to smooth");

  const std::size_t n = past_cols.size();
  la::Matrix a0(past_state.size(), n);
  la::Matrix a1(present_forecast.size(), n);
  for (std::size_t j = 0; j < n; ++j) {
    a0.set_col(j, past.anomalies.col(past_cols[j]));
    a1.set_col(j, present.anomalies.col(pres_cols[j]));
  }

  // δ₁ = x₁ˢ − x₁ᶠ.
  la::Vector delta = la::sub(present_smoothed, present_forecast);

  // Ensemble-space evaluation: w = V₁ Σ₁⁻¹ U₁ᵀ δ, increment = A₀ w.
  const la::ThinSvd svd = la::svd_thin(a1, la::SvdMethod::kGram);
  const std::size_t rank = svd.rank(svd_rel_tol);
  la::Vector ut_delta = la::matvec_t(svd.u, delta);
  la::Vector w(n, 0.0);
  double captured = 0.0;
  for (std::size_t k = 0; k < rank; ++k) {
    captured += ut_delta[k] * ut_delta[k];
    const double coeff = ut_delta[k] / svd.s[k];
    for (std::size_t j = 0; j < n; ++j) w[j] += svd.v(j, k) * coeff;
  }
  const la::Vector increment = la::matvec(a0, w);

  SmootherResult out;
  out.smoothed_state = past_state;
  for (std::size_t i = 0; i < out.smoothed_state.size(); ++i)
    out.smoothed_state[i] += increment[i];
  out.increment_rms = la::rms(increment);
  const double delta_energy = la::dot(delta, delta);
  out.representable_fraction =
      delta_energy > 0 ? captured / delta_energy : 1.0;
  return out;
}

}  // namespace essex::esse
