// ESSEX: synthetic atmospheric forcing.
//
// Stand-in for the COAMPS wind-stress fields that forced the AOSN-II
// ensembles (paper §6). Monterey Bay dynamics in August are dominated by
// alternating upwelling-favourable (equatorward) winds and relaxation
// events; WindForcing produces that cycle deterministically with optional
// per-member perturbations so ensemble members see slightly different
// forcing (a model-error source, the dη of Eq. B1a).
#pragma once

#include <cstddef>

namespace essex::ocean {

/// Wind stress vector in N/m².
struct WindStress {
  double tau_x = 0.0;  ///< eastward component
  double tau_y = 0.0;  ///< northward component
};

/// Deterministic wind-event schedule with smooth transitions.
class WindForcing {
 public:
  struct Params {
    double upwelling_tau = 0.12;   ///< N/m² equatorward stress at peak
    double relaxation_tau = 0.02;  ///< N/m² during relaxation
    double event_period_h = 96.0;  ///< full upwelling/relaxation cycle
    double upwelling_fraction = 0.6;  ///< fraction of cycle spent upwelling
    double onshore_tau = 0.01;     ///< weak onshore component
  };

  explicit WindForcing(const Params& params);
  WindForcing();

  /// Wind stress at simulation time `t_hours`. Monterey's upwelling wind
  /// blows toward the south-east: tau_y < 0 during events.
  WindStress at(double t_hours) const;

  /// True while an upwelling event is active at `t_hours`.
  bool upwelling_active(double t_hours) const;

  const Params& params() const { return params_; }

 private:
  Params params_;
};

}  // namespace essex::ocean
