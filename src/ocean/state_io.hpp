// ESSEX: forecast-product files.
//
// The paper's workflow is file-centric: perturbed initial conditions,
// member forecasts and covariance files move between pert, pemodel, the
// differ and the SVD over NFS. ESSEX stores those products in a simple
// self-describing little-endian binary container ("ESXF"): magic, kind
// tag, shape header, raw doubles. No external format libraries — the
// files are the repo's stand-in for HOPS' NetCDF products.
#pragma once

#include <cstdint>
#include <string>

#include "ocean/grid.hpp"
#include "ocean/state.hpp"

namespace essex::ocean {

/// Write a packed ocean state with its grid shape. Overwrites.
/// Throws essex::Error on I/O failure.
void save_state(const std::string& path, const Grid3D& grid,
                const OceanState& state);

/// Read a state saved by save_state(). The grid must match the stored
/// shape exactly (nx, ny, nz).
OceanState load_state(const std::string& path, const Grid3D& grid);

/// Shared low-level pieces of the ESXF container, used by the subspace
/// writer in esse/subspace_io.hpp as well.
namespace esxf {
inline constexpr char kMagic[4] = {'E', 'S', 'X', 'F'};
inline constexpr std::uint32_t kKindState = 1;
inline constexpr std::uint32_t kKindSubspace = 2;
inline constexpr std::uint32_t kVersion = 1;
}  // namespace esxf

}  // namespace essex::ocean
