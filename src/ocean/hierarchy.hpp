// ESSEX: grid hierarchy for multilevel (multi-fidelity) ensembles.
//
// The SC09 real-time constraint makes fine-grid ensemble members the
// dominant cost, and the advective CFL ties the time step to the grid
// spacing (dt ∝ dx), so a grid coarsened 2× horizontally integrates one
// member ~8× cheaper (¼ the points × ½ the steps). GridHierarchy owns
// the ladder of coarsened Grid3Ds plus the transfer operators between
// them, acting directly on packed [T, S, u, v, ssh] state vectors:
//
//   * restriction (fine → coarse): conservative block averaging — every
//     fine cell belongs to exactly one coarse cell, so a constant field
//     restricts to itself (bitwise for power-of-two block sizes);
//   * prolongation (coarse → fine): per-z-level bilinear interpolation
//     between cell centres, clamped at the boundary, computed in lerp
//     form v = p + t·(q − p) so a constant field prolongates to itself
//     bitwise;
//   * prolongation adjoint (fine → coarse): the transpose operator,
//     ⟨y, P x⟩_fine = ⟨Pᵀ y, x⟩_coarse up to roundoff — the property the
//     testkit adjoint-consistency suite pins.
//
// Coarsening is horizontal only: all levels share the fine grid's
// z-levels (the surrogate's vertical resolution is already minimal), so
// "tri-linear" degenerates to bilinear per level, applied plane by plane.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"
#include "ocean/grid.hpp"

namespace essex::ocean {

/// A ladder of horizontally-coarsened grids. Level 0 is the fine grid;
/// level l has ceil(n/f^l) points per horizontal axis (f = `coarsen`)
/// and f^l times the spacing. Every level keeps the fine z-levels, and a
/// coarse cell is land only when every fine cell it covers is land.
class GridHierarchy {
 public:
  /// Build `levels` grids (including the fine one). Requires levels >= 1,
  /// coarsen >= 2, and every coarsened grid to keep at least 3x3
  /// horizontal points (the Grid3D minimum).
  GridHierarchy(const Grid3D& fine, std::size_t levels,
                std::size_t coarsen = 2);

  std::size_t levels() const { return grids_.size(); }
  std::size_t coarsen() const { return coarsen_; }
  const Grid3D& grid(std::size_t level) const;

  /// Packed-state size of `level` (4·points + horizontal_points).
  std::size_t packed_size(std::size_t level) const;

  /// Restrict a fine (level-0) packed state down to `level` by composing
  /// one-step conservative block averages. Level 0 returns a copy.
  la::Vector restrict_state(const la::Vector& fine, std::size_t level) const;

  /// Prolongate a level-`level` packed state up to the fine grid by
  /// composing one-step bilinear interpolations.
  la::Vector prolong_state(const la::Vector& coarse,
                           std::size_t level) const;

  /// Adjoint of prolong_state: maps a fine packed vector down to `level`
  /// with the transposed interpolation weights (not an average — column
  /// sums exceed 1 where fine cells share coarse parents).
  la::Vector prolong_adjoint(const la::Vector& fine,
                             std::size_t level) const;

  /// Per-member cost of a level-`level` member relative to a fine one
  /// under the advective CFL (points ratio × dt ratio); ~f^(-3l).
  double cost_ratio(std::size_t level) const;

 private:
  // One-step operators between adjacent levels.
  la::Vector restrict_once(const la::Vector& x, std::size_t from) const;
  la::Vector prolong_once(const la::Vector& x, std::size_t from) const;
  la::Vector prolong_adjoint_once(const la::Vector& x,
                                  std::size_t from) const;

  std::size_t coarsen_;
  std::vector<Grid3D> grids_;
};

}  // namespace essex::ocean
