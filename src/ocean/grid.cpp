#include "ocean/grid.hpp"

#include <cmath>

#include "common/error.hpp"

namespace essex::ocean {

Grid3D::Grid3D(std::size_t nx, std::size_t ny, double dx_km, double dy_km,
               std::vector<double> depths)
    : nx_(nx),
      ny_(ny),
      dx_km_(dx_km),
      dy_km_(dy_km),
      depths_(std::move(depths)),
      water_(nx * ny, 1) {
  ESSEX_REQUIRE(nx >= 3 && ny >= 3, "grid needs at least 3x3 points");
  ESSEX_REQUIRE(dx_km > 0 && dy_km > 0, "grid spacing must be positive");
  ESSEX_REQUIRE(!depths_.empty(), "grid needs at least one z-level");
  for (std::size_t k = 1; k < depths_.size(); ++k) {
    ESSEX_REQUIRE(depths_[k] > depths_[k - 1],
                  "z-levels must be strictly increasing");
  }
}

std::size_t Grid3D::index(std::size_t ix, std::size_t iy,
                          std::size_t iz) const {
  ESSEX_ASSERT(ix < nx_ && iy < ny_ && iz < depths_.size(),
               "grid index out of range");
  return (iz * ny_ + iy) * nx_ + ix;
}

std::size_t Grid3D::hindex(std::size_t ix, std::size_t iy) const {
  ESSEX_ASSERT(ix < nx_ && iy < ny_, "grid hindex out of range");
  return iy * nx_ + ix;
}

bool Grid3D::is_water(std::size_t ix, std::size_t iy) const {
  return water_[hindex(ix, iy)] != 0;
}

void Grid3D::set_land(std::size_t ix, std::size_t iy) {
  water_[hindex(ix, iy)] = 0;
}

std::size_t Grid3D::water_columns() const {
  std::size_t n = 0;
  for (char w : water_) n += (w != 0);
  return n;
}

std::size_t Grid3D::level_near_depth(double depth_m) const {
  std::size_t best = 0;
  double best_d = std::fabs(depths_[0] - depth_m);
  for (std::size_t k = 1; k < depths_.size(); ++k) {
    const double d = std::fabs(depths_[k] - depth_m);
    if (d < best_d) {
      best = k;
      best_d = d;
    }
  }
  return best;
}

}  // namespace essex::ocean
