#include "ocean/state_io.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <vector>

#include "common/error.hpp"

namespace essex::ocean {

namespace {

using esxf::kKindState;
using esxf::kMagic;
using esxf::kVersion;

void write_u32(std::ofstream& f, std::uint32_t v) {
  f.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void write_u64(std::ofstream& f, std::uint64_t v) {
  f.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void write_doubles(std::ofstream& f, const std::vector<double>& v) {
  f.write(reinterpret_cast<const char*>(v.data()),
          static_cast<std::streamsize>(v.size() * sizeof(double)));
}

std::uint32_t read_u32(std::ifstream& f) {
  std::uint32_t v = 0;
  f.read(reinterpret_cast<char*>(&v), sizeof(v));
  return v;
}

std::uint64_t read_u64(std::ifstream& f) {
  std::uint64_t v = 0;
  f.read(reinterpret_cast<char*>(&v), sizeof(v));
  return v;
}

void read_doubles(std::ifstream& f, std::vector<double>& v) {
  f.read(reinterpret_cast<char*>(v.data()),
         static_cast<std::streamsize>(v.size() * sizeof(double)));
}

void check_header(std::ifstream& f, std::uint32_t expected_kind,
                  const std::string& path) {
  char magic[4];
  f.read(magic, 4);
  if (!f || std::memcmp(magic, kMagic, 4) != 0) {
    throw Error("not an ESSEX product file: " + path);
  }
  const std::uint32_t version = read_u32(f);
  if (version != kVersion) {
    throw Error("unsupported product version in " + path);
  }
  const std::uint32_t kind = read_u32(f);
  if (kind != expected_kind) {
    throw Error("wrong product kind in " + path);
  }
}

}  // namespace

void save_state(const std::string& path, const Grid3D& grid,
                const OceanState& state) {
  ESSEX_REQUIRE(state.temperature.size() == grid.points(),
                "state does not match the grid");
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) throw Error("cannot open for writing: " + path);
  f.write(kMagic, 4);
  write_u32(f, kVersion);
  write_u32(f, kKindState);
  write_u64(f, grid.nx());
  write_u64(f, grid.ny());
  write_u64(f, grid.nz());
  write_doubles(f, state.pack());
  if (!f) throw Error("failed writing: " + path);
}

OceanState load_state(const std::string& path, const Grid3D& grid) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw Error("cannot open for reading: " + path);
  check_header(f, kKindState, path);
  const std::uint64_t nx = read_u64(f);
  const std::uint64_t ny = read_u64(f);
  const std::uint64_t nz = read_u64(f);
  if (nx != grid.nx() || ny != grid.ny() || nz != grid.nz()) {
    throw Error("grid shape mismatch in " + path);
  }
  std::vector<double> packed(OceanState::packed_size(grid));
  read_doubles(f, packed);
  if (!f) throw Error("truncated product file: " + path);
  OceanState state(grid);
  state.unpack(packed, grid);
  return state;
}

}  // namespace essex::ocean
