#include "ocean/hierarchy.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "ocean/state.hpp"

namespace essex::ocean {

namespace {

std::size_t ceil_div(std::size_t a, std::size_t b) {
  return (a + b - 1) / b;
}

/// lerp form p + t·(q − p): exact for p == q, so constants survive
/// prolongation bitwise (the explicit-weight form w1·p + w2·q rounds).
double lerp(double p, double q, double t) { return p + t * (q - p); }

/// Fine cell `i` of a plane coarsened by `f`, in coarse cell-centre
/// index space: both grids share the origin of cell 0's lower edge, so
/// fine centre (i + 0.5)·dx sits at coarse index (i + 0.5)/f − 0.5.
double coarse_coord(std::size_t i, std::size_t f) {
  return (static_cast<double>(i) + 0.5) / static_cast<double>(f) - 0.5;
}

struct Bilinear {
  std::size_t i0, i1;
  double w;  ///< weight of i1 (lerp parameter)
};

Bilinear axis_weights(std::size_t i, std::size_t f, std::size_t nc) {
  double g = coarse_coord(i, f);
  if (g < 0.0) g = 0.0;
  const double gmax = static_cast<double>(nc - 1);
  if (g > gmax) g = gmax;
  std::size_t i0 = static_cast<std::size_t>(g);
  if (i0 >= nc - 1 && nc >= 2) i0 = nc - 2;
  Bilinear b;
  b.i0 = i0;
  b.i1 = nc >= 2 ? i0 + 1 : i0;
  b.w = g - static_cast<double>(i0);
  if (b.w < 0.0) b.w = 0.0;
  if (b.w > 1.0) b.w = 1.0;
  return b;
}

/// Conservative block average of one nx×ny plane down to nxc×nyc
/// (partition by ceil-division: edge blocks may be narrower).
void restrict_plane(const double* src, std::size_t nx, std::size_t ny,
                    double* dst, std::size_t nxc, std::size_t nyc,
                    std::size_t f) {
  for (std::size_t jy = 0; jy < nyc; ++jy) {
    const std::size_t y0 = jy * f;
    const std::size_t y1 = std::min(y0 + f, ny);
    for (std::size_t jx = 0; jx < nxc; ++jx) {
      const std::size_t x0 = jx * f;
      const std::size_t x1 = std::min(x0 + f, nx);
      double sum = 0.0;
      for (std::size_t iy = y0; iy < y1; ++iy)
        for (std::size_t ix = x0; ix < x1; ++ix)
          sum += src[iy * nx + ix];
      dst[jy * nxc + jx] =
          sum / static_cast<double>((y1 - y0) * (x1 - x0));
    }
  }
}

/// Cell-centred bilinear interpolation of one nxc×nyc plane up to nx×ny.
void prolong_plane(const double* src, std::size_t nxc, std::size_t nyc,
                   double* dst, std::size_t nx, std::size_t ny,
                   std::size_t f) {
  for (std::size_t iy = 0; iy < ny; ++iy) {
    const Bilinear by = axis_weights(iy, f, nyc);
    for (std::size_t ix = 0; ix < nx; ++ix) {
      const Bilinear bx = axis_weights(ix, f, nxc);
      const double lo = lerp(src[by.i0 * nxc + bx.i0],
                             src[by.i0 * nxc + bx.i1], bx.w);
      const double hi = lerp(src[by.i1 * nxc + bx.i0],
                             src[by.i1 * nxc + bx.i1], bx.w);
      dst[iy * nx + ix] = lerp(lo, hi, by.w);
    }
  }
}

/// Transpose of prolong_plane: scatter each fine value into its four
/// coarse parents with the bilinear weights.
void prolong_adjoint_plane(const double* src, std::size_t nx,
                           std::size_t ny, double* dst, std::size_t nxc,
                           std::size_t nyc, std::size_t f) {
  for (std::size_t j = 0; j < nxc * nyc; ++j) dst[j] = 0.0;
  for (std::size_t iy = 0; iy < ny; ++iy) {
    const Bilinear by = axis_weights(iy, f, nyc);
    for (std::size_t ix = 0; ix < nx; ++ix) {
      const Bilinear bx = axis_weights(ix, f, nxc);
      const double v = src[iy * nx + ix];
      dst[by.i0 * nxc + bx.i0] += v * (1.0 - bx.w) * (1.0 - by.w);
      dst[by.i0 * nxc + bx.i1] += v * bx.w * (1.0 - by.w);
      dst[by.i1 * nxc + bx.i0] += v * (1.0 - bx.w) * by.w;
      dst[by.i1 * nxc + bx.i1] += v * bx.w * by.w;
    }
  }
}

}  // namespace

GridHierarchy::GridHierarchy(const Grid3D& fine, std::size_t levels,
                             std::size_t coarsen)
    : coarsen_(coarsen) {
  ESSEX_REQUIRE(levels >= 1, "hierarchy needs at least the fine level");
  ESSEX_REQUIRE(coarsen >= 2, "coarsening factor must be >= 2");
  grids_.reserve(levels);
  grids_.push_back(fine);
  for (std::size_t l = 1; l < levels; ++l) {
    const Grid3D& prev = grids_.back();
    const std::size_t nxc = ceil_div(prev.nx(), coarsen);
    const std::size_t nyc = ceil_div(prev.ny(), coarsen);
    ESSEX_REQUIRE(nxc >= 3 && nyc >= 3,
                  "coarsened grid falls below the 3x3 Grid3D minimum");
    Grid3D g(nxc, nyc, prev.dx_km() * static_cast<double>(coarsen),
             prev.dy_km() * static_cast<double>(coarsen), prev.depths());
    // A coarse cell is land only when every covered fine cell is land:
    // any water keeps the averaged tracer values physically meaningful.
    for (std::size_t jy = 0; jy < nyc; ++jy) {
      for (std::size_t jx = 0; jx < nxc; ++jx) {
        bool water = false;
        const std::size_t y1 = std::min((jy + 1) * coarsen, prev.ny());
        const std::size_t x1 = std::min((jx + 1) * coarsen, prev.nx());
        for (std::size_t iy = jy * coarsen; iy < y1 && !water; ++iy)
          for (std::size_t ix = jx * coarsen; ix < x1; ++ix)
            if (prev.is_water(ix, iy)) {
              water = true;
              break;
            }
        if (!water) g.set_land(jx, jy);
      }
    }
    grids_.push_back(std::move(g));
  }
}

const Grid3D& GridHierarchy::grid(std::size_t level) const {
  ESSEX_REQUIRE(level < grids_.size(), "hierarchy has no such level");
  return grids_[level];
}

std::size_t GridHierarchy::packed_size(std::size_t level) const {
  return OceanState::packed_size(grid(level));
}

double GridHierarchy::cost_ratio(std::size_t level) const {
  ESSEX_REQUIRE(level < grids_.size(), "hierarchy has no such level");
  const double points = static_cast<double>(packed_size(level)) /
                        static_cast<double>(packed_size(0));
  // Advective CFL: dt ∝ dx, so a level-l member takes f^(-l) the steps.
  const double steps = std::pow(static_cast<double>(coarsen_),
                                -static_cast<double>(level));
  return points * steps;
}

la::Vector GridHierarchy::restrict_once(const la::Vector& x,
                                        std::size_t from) const {
  const Grid3D& gf = grids_[from];
  const Grid3D& gc = grids_[from + 1];
  la::Vector out(OceanState::packed_size(gc));
  const std::size_t hp_f = gf.horizontal_points();
  const std::size_t hp_c = gc.horizontal_points();
  const std::size_t nz = gf.nz();
  // Packed layout [T, S, u, v, ssh]: four 3-D fields (nz planes each)
  // then the 2-D SSH plane; z-levels are shared across the hierarchy.
  for (std::size_t field = 0; field < 4; ++field) {
    for (std::size_t iz = 0; iz < nz; ++iz) {
      restrict_plane(x.data() + field * gf.points() + iz * hp_f, gf.nx(),
                     gf.ny(), out.data() + field * gc.points() + iz * hp_c,
                     gc.nx(), gc.ny(), coarsen_);
    }
  }
  restrict_plane(x.data() + 4 * gf.points(), gf.nx(), gf.ny(),
                 out.data() + 4 * gc.points(), gc.nx(), gc.ny(), coarsen_);
  return out;
}

la::Vector GridHierarchy::prolong_once(const la::Vector& x,
                                       std::size_t from) const {
  const Grid3D& gc = grids_[from];
  const Grid3D& gf = grids_[from - 1];
  la::Vector out(OceanState::packed_size(gf));
  const std::size_t hp_f = gf.horizontal_points();
  const std::size_t hp_c = gc.horizontal_points();
  const std::size_t nz = gf.nz();
  for (std::size_t field = 0; field < 4; ++field) {
    for (std::size_t iz = 0; iz < nz; ++iz) {
      prolong_plane(x.data() + field * gc.points() + iz * hp_c, gc.nx(),
                    gc.ny(), out.data() + field * gf.points() + iz * hp_f,
                    gf.nx(), gf.ny(), coarsen_);
    }
  }
  prolong_plane(x.data() + 4 * gc.points(), gc.nx(), gc.ny(),
                out.data() + 4 * gf.points(), gf.nx(), gf.ny(), coarsen_);
  return out;
}

la::Vector GridHierarchy::prolong_adjoint_once(const la::Vector& x,
                                               std::size_t from) const {
  const Grid3D& gf = grids_[from - 1];
  const Grid3D& gc = grids_[from];
  la::Vector out(OceanState::packed_size(gc));
  const std::size_t hp_f = gf.horizontal_points();
  const std::size_t hp_c = gc.horizontal_points();
  const std::size_t nz = gf.nz();
  for (std::size_t field = 0; field < 4; ++field) {
    for (std::size_t iz = 0; iz < nz; ++iz) {
      prolong_adjoint_plane(
          x.data() + field * gf.points() + iz * hp_f, gf.nx(), gf.ny(),
          out.data() + field * gc.points() + iz * hp_c, gc.nx(), gc.ny(),
          coarsen_);
    }
  }
  prolong_adjoint_plane(x.data() + 4 * gf.points(), gf.nx(), gf.ny(),
                        out.data() + 4 * gc.points(), gc.nx(), gc.ny(),
                        coarsen_);
  return out;
}

la::Vector GridHierarchy::restrict_state(const la::Vector& fine,
                                         std::size_t level) const {
  ESSEX_REQUIRE(level < grids_.size(), "hierarchy has no such level");
  ESSEX_REQUIRE(fine.size() == packed_size(0),
                "restriction input is not a fine packed state");
  la::Vector x = fine;
  for (std::size_t l = 0; l < level; ++l) x = restrict_once(x, l);
  return x;
}

la::Vector GridHierarchy::prolong_state(const la::Vector& coarse,
                                        std::size_t level) const {
  ESSEX_REQUIRE(level < grids_.size(), "hierarchy has no such level");
  ESSEX_REQUIRE(coarse.size() == packed_size(level),
                "prolongation input does not match the level's state");
  la::Vector x = coarse;
  for (std::size_t l = level; l > 0; --l) x = prolong_once(x, l);
  return x;
}

la::Vector GridHierarchy::prolong_adjoint(const la::Vector& fine,
                                          std::size_t level) const {
  ESSEX_REQUIRE(level < grids_.size(), "hierarchy has no such level");
  ESSEX_REQUIRE(fine.size() == packed_size(0),
                "adjoint input is not a fine packed state");
  la::Vector x = fine;
  for (std::size_t l = 1; l <= level; ++l) x = prolong_adjoint_once(x, l);
  return x;
}

}  // namespace essex::ocean
