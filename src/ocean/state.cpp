#include "ocean/state.hpp"

#include <cmath>

#include "common/error.hpp"

namespace essex::ocean {

OceanState::OceanState(const Grid3D& grid)
    : temperature(grid.points(), 0.0),
      salinity(grid.points(), 0.0),
      u(grid.points(), 0.0),
      v(grid.points(), 0.0),
      ssh(grid.horizontal_points(), 0.0) {}

std::size_t OceanState::packed_size(const Grid3D& grid) {
  return 4 * grid.points() + grid.horizontal_points();
}

la::Vector OceanState::pack() const {
  la::Vector x;
  x.reserve(4 * temperature.size() + ssh.size());
  x.insert(x.end(), temperature.begin(), temperature.end());
  x.insert(x.end(), salinity.begin(), salinity.end());
  x.insert(x.end(), u.begin(), u.end());
  x.insert(x.end(), v.begin(), v.end());
  x.insert(x.end(), ssh.begin(), ssh.end());
  return x;
}

void OceanState::unpack(const la::Vector& x, const Grid3D& grid) {
  ESSEX_REQUIRE(x.size() == packed_size(grid),
                "unpack: state vector length mismatch");
  const std::size_t p = grid.points();
  const std::size_t h = grid.horizontal_points();
  temperature.assign(x.begin(), x.begin() + static_cast<std::ptrdiff_t>(p));
  salinity.assign(x.begin() + static_cast<std::ptrdiff_t>(p),
                  x.begin() + static_cast<std::ptrdiff_t>(2 * p));
  u.assign(x.begin() + static_cast<std::ptrdiff_t>(2 * p),
           x.begin() + static_cast<std::ptrdiff_t>(3 * p));
  v.assign(x.begin() + static_cast<std::ptrdiff_t>(3 * p),
           x.begin() + static_cast<std::ptrdiff_t>(4 * p));
  ssh.assign(x.begin() + static_cast<std::ptrdiff_t>(4 * p),
             x.begin() + static_cast<std::ptrdiff_t>(4 * p + h));
}

Field2D OceanState::temperature_slice(const Grid3D& grid,
                                      std::size_t iz) const {
  ESSEX_REQUIRE(iz < grid.nz(), "temperature_slice: level out of range");
  Field2D f;
  f.nx = grid.nx();
  f.ny = grid.ny();
  f.values.resize(grid.horizontal_points());
  f.x0 = 0;
  f.x1 = grid.dx_km() * static_cast<double>(grid.nx() - 1);
  f.y0 = 0;
  f.y1 = grid.dy_km() * static_cast<double>(grid.ny() - 1);
  for (std::size_t iy = 0; iy < grid.ny(); ++iy)
    for (std::size_t ix = 0; ix < grid.nx(); ++ix)
      f.values[grid.hindex(ix, iy)] = temperature[grid.index(ix, iy, iz)];
  return f;
}

double state_distance(const OceanState& a, const OceanState& b) {
  ESSEX_REQUIRE(a.temperature.size() == b.temperature.size() &&
                    a.ssh.size() == b.ssh.size(),
                "state_distance shape mismatch");
  double s = 0.0;
  auto acc = [&s](const std::vector<double>& x, const std::vector<double>& y) {
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double d = x[i] - y[i];
      s += d * d;
    }
  };
  acc(a.temperature, b.temperature);
  acc(a.salinity, b.salinity);
  acc(a.u, b.u);
  acc(a.v, b.v);
  acc(a.ssh, b.ssh);
  return std::sqrt(s);
}

}  // namespace essex::ocean
