// ESSEX: prognostic ocean state.
//
// The PE-surrogate carries temperature, salinity, horizontal velocity and
// sea-surface height. ESSE works on the packed state vector x (paper
// Eq. B1a): pack()/unpack() define the ordering used by every subspace
// operation, and that ordering is part of the public contract.
#pragma once

#include <vector>

#include "common/field_io.hpp"
#include "linalg/matrix.hpp"
#include "ocean/grid.hpp"

namespace essex::ocean {

/// Prognostic fields on a Grid3D. 3-D fields are stored flat with the
/// grid's index(); SSH is a 2-D field with hindex().
struct OceanState {
  explicit OceanState(const Grid3D& grid);

  std::vector<double> temperature;  ///< °C, size grid.points()
  std::vector<double> salinity;     ///< PSU, size grid.points()
  std::vector<double> u;            ///< m/s eastward, size grid.points()
  std::vector<double> v;            ///< m/s northward, size grid.points()
  std::vector<double> ssh;          ///< m, size grid.horizontal_points()

  /// Length of the packed state vector:
  /// 4 * points() + horizontal_points().
  static std::size_t packed_size(const Grid3D& grid);

  /// Pack in the fixed order [T, S, u, v, ssh].
  la::Vector pack() const;

  /// Unpack from a vector produced by pack() on a same-shaped state.
  void unpack(const la::Vector& x, const Grid3D& grid);

  /// Extract the temperature field at z-level `iz` as a 2-D map.
  Field2D temperature_slice(const Grid3D& grid, std::size_t iz) const;
};

/// Euclidean distance between two packed states (diagnostic).
double state_distance(const OceanState& a, const OceanState& b);

}  // namespace essex::ocean
