#include "ocean/tiling.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace essex::ocean {

namespace {

// Unnormalized per-axis blending weight of a tile at coordinate i, given
// the tile's owned half-open range [lo, hi) and the halo radius. Owned
// cells get the full weight halo+1; halo cells roll off linearly to 1 at
// the outermost halo cell. Only meaningful when the (clamped) halo rect
// contains i, which bounds the distance below by halo.
double axis_weight(std::size_t i, std::size_t lo, std::size_t hi,
                   std::size_t halo) {
  const double full = static_cast<double>(halo + 1);
  if (i < lo) return full - static_cast<double>(lo - i);
  if (i >= hi) return full - static_cast<double>(i - hi + 1);
  return full;
}

}  // namespace

Tiling::Tiling(const Grid3D& grid, const TilingParams& params)
    : nx_(grid.nx()),
      ny_(grid.ny()),
      nz_(grid.nz()),
      points_(grid.points()),
      dx_km_(grid.dx_km()),
      dy_km_(grid.dy_km()),
      tiles_x_(params.tiles_x),
      tiles_y_(params.tiles_y),
      halo_(params.halo_cells) {
  ESSEX_REQUIRE(tiles_x_ >= 1 && tiles_y_ >= 1,
                "tiling needs at least one tile per axis");
  ESSEX_REQUIRE(tiles_x_ <= nx_ && tiles_y_ <= ny_,
                "tile count exceeds the grid dimension");

  tiles_.reserve(tiles_x_ * tiles_y_);
  owned_runs_.reserve(tiles_x_ * tiles_y_);
  for (std::size_t ty = 0; ty < tiles_y_; ++ty) {
    for (std::size_t tx = 0; tx < tiles_x_; ++tx) {
      TileRect r;
      // Balanced partition that absorbs remainders one cell at a time,
      // so uneven nx/tiles_x still yields non-empty owned ranges.
      r.x0 = tx * nx_ / tiles_x_;
      r.x1 = (tx + 1) * nx_ / tiles_x_;
      r.y0 = ty * ny_ / tiles_y_;
      r.y1 = (ty + 1) * ny_ / tiles_y_;
      r.hx0 = r.x0 > halo_ ? r.x0 - halo_ : 0;
      r.hx1 = std::min(nx_, r.x1 + halo_);
      r.hy0 = r.y0 > halo_ ? r.y0 - halo_ : 0;
      r.hy1 = std::min(ny_, r.y1 + halo_);
      tiles_.push_back(r);

      // Owned packed rows: one run per variable × z-level × cell row,
      // plus the SSH plane. Ascending begin within the tile.
      la::RunList runs;
      runs.reserve((4 * nz_ + 1) * (r.y1 - r.y0));
      const std::size_t w = r.x1 - r.x0;
      for (std::size_t var = 0; var < 4; ++var) {
        for (std::size_t iz = 0; iz < nz_; ++iz) {
          for (std::size_t iy = r.y0; iy < r.y1; ++iy)
            runs.push_back({var_index(var, r.x0, iy, iz), w});
        }
      }
      for (std::size_t iy = r.y0; iy < r.y1; ++iy)
        runs.push_back({ssh_index(r.x0, iy), w});
      owned_runs_.push_back(std::move(runs));
    }
  }
}

std::size_t Tiling::owner_of(std::size_t ix, std::size_t iy) const {
  ESSEX_REQUIRE(ix < nx_ && iy < ny_, "cell outside the grid");
  // Invert the balanced partition: tx is the largest tile whose x0 ≤ ix.
  std::size_t tx = std::min(tiles_x_ - 1, ix * tiles_x_ / nx_);
  while (tx + 1 < tiles_x_ && (tx + 1) * nx_ / tiles_x_ <= ix) ++tx;
  while (tx > 0 && tx * nx_ / tiles_x_ > ix) --tx;
  std::size_t ty = std::min(tiles_y_ - 1, iy * tiles_y_ / ny_);
  while (ty + 1 < tiles_y_ && (ty + 1) * ny_ / tiles_y_ <= iy) ++ty;
  while (ty > 0 && ty * ny_ / tiles_y_ > iy) --ty;
  return ty * tiles_x_ + tx;
}

std::size_t Tiling::owned_points(std::size_t t) const {
  const TileRect& r = tiles_[t];
  return (r.x1 - r.x0) * (r.y1 - r.y0) * (4 * nz_ + 1);
}

std::vector<std::pair<std::size_t, double>> Tiling::cover(
    std::size_t ix, std::size_t iy) const {
  std::vector<std::pair<std::size_t, double>> out;
  double sum = 0.0;
  for (std::size_t t = 0; t < tiles_.size(); ++t) {
    const TileRect& r = tiles_[t];
    if (!r.covers(ix, iy)) continue;
    const double w = axis_weight(ix, r.x0, r.x1, halo_) *
                     axis_weight(iy, r.y0, r.y1, halo_);
    out.emplace_back(t, w);
    sum += w;
  }
  for (auto& [t, w] : out) w /= sum;
  return out;
}

double Tiling::distance_km(std::size_t t, double x_km, double y_km) const {
  const TileRect& r = tiles_[t];
  const double x_lo = static_cast<double>(r.x0) * dx_km_;
  const double x_hi = static_cast<double>(r.x1 - 1) * dx_km_;
  const double y_lo = static_cast<double>(r.y0) * dy_km_;
  const double y_hi = static_cast<double>(r.y1 - 1) * dy_km_;
  const double dx = std::max({0.0, x_lo - x_km, x_km - x_hi});
  const double dy = std::max({0.0, y_lo - y_km, y_km - y_hi});
  return std::hypot(dx, dy);
}

}  // namespace essex::ocean
