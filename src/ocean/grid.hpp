// ESSEX: structured ocean grid.
//
// A regional lon/lat/z grid in the style of HOPS regional domains: uniform
// horizontal spacing in kilometres, a small set of z-levels, and a 2-D
// land/sea mask (the paper's Monterey Bay domain has the Californian coast
// on its eastern edge).
#pragma once

#include <cstddef>
#include <vector>

namespace essex::ocean {

/// Regional structured grid. ix runs east, iy runs north, iz runs down
/// (iz = 0 is the surface level).
class Grid3D {
 public:
  /// Uniform grid: nx×ny horizontal points spaced dx/dy kilometres,
  /// `depths` z-levels in metres (ascending, depths[0] is the surface
  /// level depth, usually 0).
  Grid3D(std::size_t nx, std::size_t ny, double dx_km, double dy_km,
         std::vector<double> depths);

  std::size_t nx() const { return nx_; }
  std::size_t ny() const { return ny_; }
  std::size_t nz() const { return depths_.size(); }

  double dx_km() const { return dx_km_; }
  double dy_km() const { return dy_km_; }
  const std::vector<double>& depths() const { return depths_; }

  /// Total horizontal points.
  std::size_t horizontal_points() const { return nx_ * ny_; }

  /// Total 3-D points.
  std::size_t points() const { return nx_ * ny_ * depths_.size(); }

  /// Flatten a 3-D index (row-major: iz slowest, then iy, then ix).
  std::size_t index(std::size_t ix, std::size_t iy, std::size_t iz) const;

  /// Flatten a horizontal index.
  std::size_t hindex(std::size_t ix, std::size_t iy) const;

  /// Land/sea mask: true = water. Defaults to all water.
  bool is_water(std::size_t ix, std::size_t iy) const;
  void set_land(std::size_t ix, std::size_t iy);

  /// Count of water columns.
  std::size_t water_columns() const;

  /// Index of the z-level closest to `depth_m`.
  std::size_t level_near_depth(double depth_m) const;

 private:
  std::size_t nx_, ny_;
  double dx_km_, dy_km_;
  std::vector<double> depths_;
  std::vector<char> water_;  // 1 = water
};

}  // namespace essex::ocean
