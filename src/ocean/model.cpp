#include "ocean/model.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace essex::ocean {

OceanModel::OceanModel(const Grid3D& grid, const ModelParams& params,
                       const WindForcing& forcing,
                       const OceanState& climatology)
    : grid_(grid), params_(params), forcing_(forcing),
      climatology_(climatology) {
  ESSEX_REQUIRE(climatology.temperature.size() == grid.points(),
                "climatology does not match grid");
  ESSEX_REQUIRE(params.coriolis_f > 0, "Coriolis parameter must be > 0");
  ESSEX_REQUIRE(params.mixed_layer_m > 0, "mixed layer depth must be > 0");
}

double OceanModel::max_stable_dt_hours() const {
  const double dx_m = std::min(grid_.dx_km(), grid_.dy_km()) * 1000.0;
  // Advective CFL with the velocity cap, plus a diffusive limit.
  const double adv_dt = 0.4 * dx_m / std::max(params_.geostrophic_cap, 0.01);
  const double dif_dt = 0.2 * dx_m * dx_m / std::max(params_.kappa_h, 1e-6);
  return std::min(adv_dt, dif_dt) / 3600.0;
}

void OceanModel::diagnose_currents(OceanState& state, double t_hours) const {
  const std::size_t nx = grid_.nx(), ny = grid_.ny(), nz = grid_.nz();
  const double dx_m = grid_.dx_km() * 1000.0;
  const double dy_m = grid_.dy_km() * 1000.0;
  const double gf = params_.gravity / params_.coriolis_f;
  const WindStress tau = forcing_.at(t_hours);
  // Ekman surface velocity (rotated 90° right of the wind in the northern
  // hemisphere), decaying with depth over the mixed layer.
  const double ek_scale =
      1.0 / (params_.rho0 * params_.coriolis_f * params_.mixed_layer_m);
  const double ue = tau.tau_y * ek_scale;   // 90° to the right
  const double ve = -tau.tau_x * ek_scale;

  for (std::size_t iz = 0; iz < nz; ++iz) {
    const double depth = grid_.depths()[iz];
    const double ek_decay = std::exp(-depth / params_.mixed_layer_m);
    // Geostrophic shear decays with depth too (1.5-layer reduced gravity).
    const double geo_decay = std::exp(-depth / 150.0);
    for (std::size_t iy = 0; iy < ny; ++iy) {
      for (std::size_t ix = 0; ix < nx; ++ix) {
        const std::size_t id = grid_.index(ix, iy, iz);
        if (!grid_.is_water(ix, iy)) {
          state.u[id] = 0.0;
          state.v[id] = 0.0;
          continue;
        }
        // Centred SSH gradients with one-sided fallback at edges/land.
        auto ssh_at = [&](std::size_t jx, std::size_t jy) {
          if (!grid_.is_water(jx, jy)) return state.ssh[grid_.hindex(ix, iy)];
          return state.ssh[grid_.hindex(jx, jy)];
        };
        const std::size_t xm = (ix > 0) ? ix - 1 : ix;
        const std::size_t xp = (ix + 1 < nx) ? ix + 1 : ix;
        const std::size_t ym = (iy > 0) ? iy - 1 : iy;
        const std::size_t yp = (iy + 1 < ny) ? iy + 1 : iy;
        const double detadx =
            (ssh_at(xp, iy) - ssh_at(xm, iy)) /
            (static_cast<double>(xp - xm) * dx_m);
        const double detady =
            (ssh_at(ix, yp) - ssh_at(ix, ym)) /
            (static_cast<double>(yp - ym) * dy_m);
        double ug = -gf * detady * geo_decay;
        double vg = gf * detadx * geo_decay;
        ug += ue * ek_decay;
        vg += ve * ek_decay;
        const double cap = params_.geostrophic_cap;
        state.u[id] = std::clamp(ug, -cap, cap);
        state.v[id] = std::clamp(vg, -cap, cap);
      }
    }
  }
}

namespace {

// One Jacobi smoothing pass over a horizontal field (water points only).
void smooth_pass(const Grid3D& g, std::vector<double>& f) {
  std::vector<double> out = f;
  for (std::size_t iy = 0; iy < g.ny(); ++iy) {
    for (std::size_t ix = 0; ix < g.nx(); ++ix) {
      if (!g.is_water(ix, iy)) continue;
      double sum = f[g.hindex(ix, iy)];
      double w = 1.0;
      auto acc = [&](std::size_t jx, std::size_t jy) {
        if (g.is_water(jx, jy)) {
          sum += f[g.hindex(jx, jy)];
          w += 1.0;
        }
      };
      if (ix > 0) acc(ix - 1, iy);
      if (ix + 1 < g.nx()) acc(ix + 1, iy);
      if (iy > 0) acc(ix, iy - 1);
      if (iy + 1 < g.ny()) acc(ix, iy + 1);
      out[g.hindex(ix, iy)] = sum / w;
    }
  }
  f.swap(out);
}

}  // namespace

void OceanModel::apply_stochastic_forcing(OceanState& state, double dt_hours,
                                          Rng& rng) const {
  const std::size_t nx = grid_.nx(), ny = grid_.ny(), nz = grid_.nz();
  const double sqrt_dt = std::sqrt(dt_hours);

  // Spatially-correlated horizontal noise pattern shared by T and SSH,
  // produced by smoothing white noise. Smoothing shrinks the variance, so
  // re-normalise to unit RMS afterwards.
  std::vector<double> pattern(grid_.horizontal_points());
  for (auto& x : pattern) x = rng.normal();
  for (std::size_t p = 0; p < params_.noise_smooth_passes; ++p)
    smooth_pass(grid_, pattern);
  double rms = 0.0;
  for (double x : pattern) rms += x * x;
  rms = std::sqrt(rms / static_cast<double>(pattern.size()));
  if (rms > 0) {
    for (auto& x : pattern) x /= rms;
  }

  for (std::size_t iz = 0; iz < nz; ++iz) {
    const double depth = grid_.depths()[iz];
    const double decay = std::exp(-depth / 100.0);  // surface intensified
    const double amp = params_.noise_temp * sqrt_dt * decay;
    for (std::size_t iy = 0; iy < ny; ++iy) {
      for (std::size_t ix = 0; ix < nx; ++ix) {
        if (!grid_.is_water(ix, iy)) continue;
        state.temperature[grid_.index(ix, iy, iz)] +=
            amp * pattern[grid_.hindex(ix, iy)];
      }
    }
  }
  const double amp_ssh = params_.noise_ssh * sqrt_dt;
  for (std::size_t iy = 0; iy < ny; ++iy)
    for (std::size_t ix = 0; ix < nx; ++ix)
      if (grid_.is_water(ix, iy))
        state.ssh[grid_.hindex(ix, iy)] += amp_ssh * pattern[grid_.hindex(ix, iy)];
}

void OceanModel::relax_boundaries(OceanState& state, double dt_seconds) const {
  const std::size_t nx = grid_.nx(), ny = grid_.ny(), nz = grid_.nz();
  const std::size_t w = params_.boundary_width;
  const std::size_t far = nx + ny;  // "no open edge this way"
  for (std::size_t iy = 0; iy < ny; ++iy) {
    for (std::size_t ix = 0; ix < nx; ++ix) {
      if (!grid_.is_water(ix, iy)) continue;
      // Distance (in cells) to the nearest OPEN edge: an edge cell that
      // is itself water. A coastline edge (land, e.g. the Californian
      // coast on the east) is not an open boundary and gets no sponge.
      const std::size_t d_w = grid_.is_water(0, iy) ? ix : far;
      const std::size_t d_e = grid_.is_water(nx - 1, iy) ? nx - 1 - ix : far;
      const std::size_t d_s = grid_.is_water(ix, 0) ? iy : far;
      const std::size_t d_n = grid_.is_water(ix, ny - 1) ? ny - 1 - iy : far;
      const std::size_t d = std::min(std::min(d_w, d_e), std::min(d_s, d_n));
      if (d >= w) continue;
      const double strength = params_.boundary_relax_rate * dt_seconds *
                              (1.0 - static_cast<double>(d) /
                                         static_cast<double>(w));
      const double a = std::clamp(strength, 0.0, 1.0);
      for (std::size_t iz = 0; iz < nz; ++iz) {
        const std::size_t id = grid_.index(ix, iy, iz);
        state.temperature[id] +=
            a * (climatology_.temperature[id] - state.temperature[id]);
        state.salinity[id] +=
            a * (climatology_.salinity[id] - state.salinity[id]);
      }
      const std::size_t hid = grid_.hindex(ix, iy);
      state.ssh[hid] += a * (climatology_.ssh[hid] - state.ssh[hid]);
    }
  }
}

void OceanModel::step(OceanState& state, double t_hours, double dt_hours,
                      Rng* rng) const {
  ESSEX_REQUIRE(dt_hours > 0, "step requires a positive dt");
  ESSEX_REQUIRE(dt_hours <= max_stable_dt_hours() * (1.0 + 1e-9),
                "step dt exceeds the stable limit");
  ESSEX_REQUIRE(state.temperature.size() == grid_.points(),
                "state does not match the model grid");

  const std::size_t nx = grid_.nx(), ny = grid_.ny(), nz = grid_.nz();
  const double dt = dt_hours * 3600.0;  // seconds
  const double dx_m = grid_.dx_km() * 1000.0;
  const double dy_m = grid_.dy_km() * 1000.0;

  diagnose_currents(state, t_hours);

  const WindStress tau = forcing_.at(t_hours);

  // --- tracer advection-diffusion (upwind + Laplacian), level by level ---
  std::vector<double> newT = state.temperature;
  std::vector<double> newS = state.salinity;
  for (std::size_t iz = 0; iz < nz; ++iz) {
    for (std::size_t iy = 0; iy < ny; ++iy) {
      for (std::size_t ix = 0; ix < nx; ++ix) {
        if (!grid_.is_water(ix, iy)) continue;
        const std::size_t id = grid_.index(ix, iy, iz);
        const double uu = state.u[id];
        const double vv = state.v[id];

        auto tracer_step = [&](const std::vector<double>& f,
                               std::vector<double>& out) {
          const double fc = f[id];
          auto fat = [&](std::size_t jx, std::size_t jy) {
            if (jx >= nx || jy >= ny || !grid_.is_water(jx, jy)) return fc;
            return f[grid_.index(jx, jy, iz)];
          };
          // Upwind advection.
          double adv = 0.0;
          if (uu > 0) {
            adv += uu * (fc - fat(ix - 1, iy)) / dx_m;  // ix-1 wraps to huge => fc
          } else {
            adv += uu * (fat(ix + 1, iy) - fc) / dx_m;
          }
          if (vv > 0) {
            adv += vv * (fc - fat(ix, iy - 1)) / dy_m;
          } else {
            adv += vv * (fat(ix, iy + 1) - fc) / dy_m;
          }
          // Horizontal diffusion.
          const double lap =
              (fat(ix + 1, iy) - 2 * fc + fat(ix - 1, iy)) / (dx_m * dx_m) +
              (fat(ix, iy + 1) - 2 * fc + fat(ix, iy - 1)) / (dy_m * dy_m);
          // Vertical diffusion.
          double vdiff = 0.0;
          if (nz > 1) {
            const double fz_up =
                (iz > 0) ? f[grid_.index(ix, iy, iz - 1)] : fc;
            const double fz_dn =
                (iz + 1 < nz) ? f[grid_.index(ix, iy, iz + 1)] : fc;
            const double dz_up =
                (iz > 0) ? grid_.depths()[iz] - grid_.depths()[iz - 1] : 1.0;
            const double dz_dn = (iz + 1 < nz)
                                     ? grid_.depths()[iz + 1] -
                                           grid_.depths()[iz]
                                     : 1.0;
            vdiff = params_.kappa_v *
                    ((fz_dn - fc) / (dz_dn * dz_dn) -
                     (fc - fz_up) / (dz_up * dz_up));
          }
          out[id] = fc + dt * (-adv + params_.kappa_h * lap + vdiff);
        };
        tracer_step(state.temperature, newT);
        tracer_step(state.salinity, newS);
      }
    }
  }

  // --- coastal upwelling: equatorward wind lifts deep water along the
  // eastern/land boundary (cold, salty water entrained upward) ---
  const double equatorward = std::max(-tau.tau_y, 0.0);
  if (equatorward > 0 && nz > 1) {
    const double w_up = params_.upwelling_efficiency * equatorward;  // m/s
    for (std::size_t iy = 0; iy < ny; ++iy) {
      for (std::size_t ix = 0; ix < nx; ++ix) {
        if (!grid_.is_water(ix, iy)) continue;
        // A column is "coastal" if land lies within two cells to the east.
        bool coastal = false;
        for (std::size_t k = 1; k <= 2 && !coastal; ++k) {
          if (ix + k >= nx) break;
          coastal = !grid_.is_water(ix + k, iy);
        }
        if (!coastal) continue;
        for (std::size_t iz = 0; iz + 1 < nz; ++iz) {
          const std::size_t id = grid_.index(ix, iy, iz);
          const std::size_t below = grid_.index(ix, iy, iz + 1);
          const double dz =
              grid_.depths()[iz + 1] - grid_.depths()[iz];
          const double frac = std::clamp(w_up * dt / dz, 0.0, 0.5);
          newT[id] += frac * (state.temperature[below] - state.temperature[id]);
          newS[id] += frac * (state.salinity[below] - state.salinity[id]);
        }
      }
    }
  }

  // --- SSH: advection by surface flow, wind-stress input, damping,
  // diffusion ---
  std::vector<double> newSsh = state.ssh;
  for (std::size_t iy = 0; iy < ny; ++iy) {
    for (std::size_t ix = 0; ix < nx; ++ix) {
      if (!grid_.is_water(ix, iy)) continue;
      const std::size_t hid = grid_.hindex(ix, iy);
      const std::size_t sid = grid_.index(ix, iy, 0);
      const double uu = state.u[sid];
      const double vv = state.v[sid];
      const double ec = state.ssh[hid];
      auto eat = [&](std::size_t jx, std::size_t jy) {
        if (jx >= nx || jy >= ny || !grid_.is_water(jx, jy)) return ec;
        return state.ssh[grid_.hindex(jx, jy)];
      };
      double adv = 0.0;
      if (uu > 0) {
        adv += uu * (ec - eat(ix - 1, iy)) / dx_m;
      } else {
        adv += uu * (eat(ix + 1, iy) - ec) / dx_m;
      }
      if (vv > 0) {
        adv += vv * (ec - eat(ix, iy - 1)) / dy_m;
      } else {
        adv += vv * (eat(ix, iy + 1) - ec) / dy_m;
      }
      const double lap =
          (eat(ix + 1, iy) - 2 * ec + eat(ix - 1, iy)) / (dx_m * dx_m) +
          (eat(ix, iy + 1) - 2 * ec + eat(ix, iy - 1)) / (dy_m * dy_m);
      // Coastal setup/setdown: equatorward wind lowers coastal SSH
      // (offshore Ekman transport). The full gravity-wave adjustment is
      // not resolved, so the response is modelled as a bounded
      // relaxation toward the post-adjustment setdown level.
      double wind_term = 0.0;
      bool coastal = (ix + 1 < nx) ? !grid_.is_water(ix + 1, iy) : true;
      if (coastal) {
        const double target = params_.coastal_setdown_m * tau.tau_y;
        wind_term = params_.coastal_adjust_rate * (target - ec);
      }
      newSsh[hid] = ec + dt * (-adv + params_.kappa_h * lap + wind_term -
                               params_.ssh_damping * ec);
    }
  }

  state.temperature.swap(newT);
  state.salinity.swap(newS);
  state.ssh.swap(newSsh);

  relax_boundaries(state, dt);

  if (rng != nullptr) apply_stochastic_forcing(state, dt_hours, *rng);

  // Refresh diagnosed currents so the returned state is self-consistent.
  diagnose_currents(state, t_hours + dt_hours);
}

std::size_t OceanModel::run(OceanState& state, double t0_hours,
                            double duration_hours, Rng* rng) const {
  ESSEX_REQUIRE(duration_hours >= 0, "run duration must be non-negative");
  const double dt_max = max_stable_dt_hours();
  std::size_t steps = 0;
  double t = t0_hours;
  double remaining = duration_hours;
  while (remaining > 1e-12) {
    const double dt = std::min(dt_max, remaining);
    step(state, t, dt, rng);
    t += dt;
    remaining -= dt;
    ++steps;
  }
  return steps;
}

}  // namespace essex::ocean
