#include "ocean/forcing.hpp"

#include <cmath>
#include <numbers>

#include "common/error.hpp"

namespace essex::ocean {

WindForcing::WindForcing(const Params& params) : params_(params) {
  ESSEX_REQUIRE(params.event_period_h > 0, "wind event period must be > 0");
  ESSEX_REQUIRE(params.upwelling_fraction > 0 &&
                    params.upwelling_fraction < 1,
                "upwelling fraction must lie in (0,1)");
}

WindForcing::WindForcing() : WindForcing(Params{}) {}

bool WindForcing::upwelling_active(double t_hours) const {
  const double phase =
      std::fmod(std::fmod(t_hours, params_.event_period_h) +
                    params_.event_period_h,
                params_.event_period_h) /
      params_.event_period_h;
  return phase < params_.upwelling_fraction;
}

WindStress WindForcing::at(double t_hours) const {
  const double phase =
      std::fmod(std::fmod(t_hours, params_.event_period_h) +
                    params_.event_period_h,
                params_.event_period_h) /
      params_.event_period_h;
  // Smooth envelope: cosine ramp within each regime so stress is C¹.
  double envelope;
  if (phase < params_.upwelling_fraction) {
    const double s = phase / params_.upwelling_fraction;
    envelope = 0.5 * (1.0 - std::cos(2.0 * std::numbers::pi * s));
    const double tau =
        params_.relaxation_tau +
        (params_.upwelling_tau - params_.relaxation_tau) * envelope;
    return {params_.onshore_tau, -tau};  // equatorward (southward)
  }
  const double s = (phase - params_.upwelling_fraction) /
                   (1.0 - params_.upwelling_fraction);
  envelope = 0.5 * (1.0 - std::cos(2.0 * std::numbers::pi * s));
  // Relaxation: weak poleward reversal.
  const double tau = params_.relaxation_tau * (0.5 + 0.5 * envelope);
  return {0.5 * params_.onshore_tau, tau};
}

}  // namespace essex::ocean
