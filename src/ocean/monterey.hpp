// ESSEX: Monterey-Bay-like idealised domain factory.
//
// Synthetic stand-in for the AOSN-II Monterey Bay configuration (paper
// §6): a coastal strip of land along the eastern edge with a bay
// indentation, a cross-shore SST front from recent upwelling, a
// stratified thermocline and a pair of mesoscale SSH eddies. The *real*
// AOSN-II fields are proprietary; this domain reproduces the features the
// uncertainty forecast maps (Figs. 5/6) key on — uncertainty concentrates
// along the upwelling front and eddy edges.
#pragma once

#include <cstddef>

#include "ocean/grid.hpp"
#include "ocean/model.hpp"
#include "ocean/state.hpp"

namespace essex::ocean {

/// A ready-to-run scenario: grid + initial state + model.
struct Scenario {
  Grid3D grid;
  OceanState initial;
  ModelParams params;
  WindForcing::Params wind;
};

/// Build the Monterey-Bay-like scenario.
///
/// `nx`,`ny` horizontal points (>= 16 each recommended), `nz` z-levels.
/// The domain spans roughly 120 km × 120 km with the coast along the
/// east; depth levels reach ~400 m.
Scenario make_monterey_scenario(std::size_t nx = 48, std::size_t ny = 40,
                                std::size_t nz = 6);

/// A small cyclic double-gyre box with no land — the cheap test/quickstart
/// domain (analogous to the idealised cases HOPS is smoke-tested on).
Scenario make_double_gyre_scenario(std::size_t nx = 24, std::size_t ny = 20,
                                   std::size_t nz = 4);

}  // namespace essex::ocean
