#include "ocean/monterey.hpp"

#include <cmath>
#include <numbers>

#include "common/error.hpp"

namespace essex::ocean {

namespace {

/// Vertical temperature profile: warm mixed layer over a thermocline.
double t_profile(double surface_t, double depth_m) {
  const double deep_t = 6.0;
  const double thermocline = 40.0;  // m
  const double sharp = 30.0;
  const double frac =
      1.0 / (1.0 + std::exp((depth_m - thermocline) / sharp));
  return deep_t + (surface_t - deep_t) * frac;
}

double s_profile(double surface_s, double depth_m) {
  const double deep_s = 34.2;
  return deep_s + (surface_s - deep_s) * std::exp(-depth_m / 80.0);
}

}  // namespace

Scenario make_monterey_scenario(std::size_t nx, std::size_t ny,
                                std::size_t nz) {
  ESSEX_REQUIRE(nx >= 12 && ny >= 12 && nz >= 3,
                "Monterey scenario needs at least a 12x12x3 grid");
  const double extent_km = 120.0;
  const double dx = extent_km / static_cast<double>(nx - 1);
  const double dy = extent_km / static_cast<double>(ny - 1);
  // Geometrically stretched z-levels from the surface to 400 m with the
  // first subsurface level at ~10 m (so a ~30 m level exists for the
  // Fig. 6 product at any nz >= 4). Solve (r^(nz-1)-1)/(r-1) = 40 for
  // the stretching ratio by bisection.
  double lo = 1.0001, hi = 16.0;
  for (int it = 0; it < 60; ++it) {
    const double r = 0.5 * (lo + hi);
    const double sum = (std::pow(r, static_cast<double>(nz - 1)) - 1.0) /
                       (r - 1.0);
    (sum > 40.0 ? hi : lo) = r;
  }
  const double ratio = 0.5 * (lo + hi);
  std::vector<double> depths;
  depths.reserve(nz);
  const double denom =
      (std::pow(ratio, static_cast<double>(nz - 1)) - 1.0) / (ratio - 1.0);
  double acc = 0.0;
  depths.push_back(0.0);
  for (std::size_t k = 1; k < nz; ++k) {
    acc += std::pow(ratio, static_cast<double>(k - 1));
    depths.push_back(400.0 * acc / denom);
  }

  Grid3D grid(nx, ny, dx, dy, depths);

  // Coastline along the east with a bay indentation near mid-latitude:
  // land occupies the last ~15% of columns except where the bay cuts in.
  const auto coast_start = static_cast<std::size_t>(
      std::floor(0.85 * static_cast<double>(nx)));
  for (std::size_t iy = 0; iy < ny; ++iy) {
    const double y_frac = static_cast<double>(iy) / static_cast<double>(ny - 1);
    // Bay indentation: between 45% and 65% of the north-south extent the
    // coast retreats east, carving Monterey-Bay-like concavity.
    double local_start = static_cast<double>(coast_start);
    if (y_frac > 0.45 && y_frac < 0.65) {
      const double t = (y_frac - 0.45) / 0.20;
      const double bump = std::sin(std::numbers::pi * t);
      local_start += bump * 0.10 * static_cast<double>(nx);
    }
    for (std::size_t ix = 0; ix < nx; ++ix) {
      if (static_cast<double>(ix) >= local_start) grid.set_land(ix, iy);
    }
  }

  OceanState init(grid);
  for (std::size_t iy = 0; iy < ny; ++iy) {
    for (std::size_t ix = 0; ix < nx; ++ix) {
      const double x_frac =
          static_cast<double>(ix) / static_cast<double>(nx - 1);
      const double y_frac =
          static_cast<double>(iy) / static_cast<double>(ny - 1);
      // Cross-shore SST: cold upwelled water near the coast (east), warm
      // offshore pool to the west, plus a meander in the front.
      const double meander =
          0.06 * std::sin(3.0 * std::numbers::pi * y_frac);
      const double front = 1.0 / (1.0 + std::exp(((x_frac + meander) - 0.55) /
                                                 0.08));
      const double sst = 11.0 + 5.0 * front;  // 11 °C coastal, 16 °C offshore
      const double sss = 33.6 - 0.5 * front;  // saltier upwelled water
      for (std::size_t iz = 0; iz < nz; ++iz) {
        const std::size_t id = grid.index(ix, iy, iz);
        init.temperature[id] = t_profile(sst, depths[iz]);
        init.salinity[id] = s_profile(sss, depths[iz]);
      }
      // SSH: depressed at the cold coastal strip, plus two mesoscale
      // eddies offshore (anticyclone north-west, cyclone south-west).
      double ssh = -0.08 * (1.0 - front);
      auto eddy = [&](double cx, double cy, double amp, double radius) {
        const double rx = (x_frac - cx) * extent_km;
        const double ry = (y_frac - cy) * extent_km;
        return amp * std::exp(-(rx * rx + ry * ry) / (radius * radius));
      };
      ssh += eddy(0.30, 0.72, 0.10, 25.0);   // warm anticyclone
      ssh += eddy(0.28, 0.25, -0.08, 22.0);  // cold cyclone
      init.ssh[grid.hindex(ix, iy)] = ssh;
    }
  }

  Scenario sc{std::move(grid), std::move(init), ModelParams{},
              WindForcing::Params{}};
  return sc;
}

Scenario make_double_gyre_scenario(std::size_t nx, std::size_t ny,
                                   std::size_t nz) {
  ESSEX_REQUIRE(nx >= 8 && ny >= 8 && nz >= 2,
                "double gyre needs at least an 8x8x2 grid");
  const double extent_km = 60.0;
  const double dx = extent_km / static_cast<double>(nx - 1);
  const double dy = extent_km / static_cast<double>(ny - 1);
  std::vector<double> depths;
  for (std::size_t k = 0; k < nz; ++k)
    depths.push_back(200.0 * static_cast<double>(k) /
                     static_cast<double>(nz - 1));
  depths[0] = 0.0;
  Grid3D grid(nx, ny, dx, dy, depths);

  OceanState init(grid);
  for (std::size_t iy = 0; iy < ny; ++iy) {
    for (std::size_t ix = 0; ix < nx; ++ix) {
      const double xf = static_cast<double>(ix) / static_cast<double>(nx - 1);
      const double yf = static_cast<double>(iy) / static_cast<double>(ny - 1);
      const double sst =
          13.0 + 3.0 * std::sin(std::numbers::pi * xf) *
                     std::cos(std::numbers::pi * yf);
      for (std::size_t iz = 0; iz < nz; ++iz) {
        const std::size_t id = grid.index(ix, iy, iz);
        init.temperature[id] = t_profile(sst, depths[iz]);
        init.salinity[id] = s_profile(33.5, depths[iz]);
      }
      // Two counter-rotating gyres.
      init.ssh[grid.hindex(ix, iy)] =
          0.06 * std::sin(2.0 * std::numbers::pi * xf) *
          std::sin(std::numbers::pi * yf);
    }
  }

  ModelParams params;
  params.noise_temp = 0.03;
  WindForcing::Params wind;
  wind.upwelling_tau = 0.05;  // gentler winds in the idealised box
  Scenario sc{std::move(grid), std::move(init), params, wind};
  return sc;
}

}  // namespace essex::ocean
