// ESSEX: primitive-equation surrogate ocean model.
//
// Stand-in for the HOPS PE model that ESSE wraps (DESIGN.md §2). ESSE
// only requires a nonlinear stochastic propagator dx = M(x,t)dt + dη
// (paper Eq. B1a); this surrogate supplies one with the mesoscale
// phenomenology that matters for Monterey Bay uncertainty maps:
//
//   * geostrophic currents diagnosed from SSH,
//   * wind-driven Ekman surface flow and coastal upwelling (equatorward
//     wind lifts cold water along the eastern/land boundary),
//   * upwind advection + Laplacian diffusion of T and S,
//   * SSH evolution with wind-stress curl input and damping,
//   * open-boundary relaxation toward climatology,
//   * spatially-correlated stochastic forcing (the Wiener increment dη),
//     surface-intensified for T and barotropic for SSH.
//
// A deterministic run (noise disabled) is the paper's "central forecast".
#pragma once

#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "ocean/forcing.hpp"
#include "ocean/grid.hpp"
#include "ocean/state.hpp"

namespace essex::ocean {

/// Tunable physics of the PE surrogate.
struct ModelParams {
  double coriolis_f = 8.7e-5;       ///< s⁻¹ (≈36.6°N)
  double gravity = 9.81;            ///< m/s²
  double rho0 = 1025.0;             ///< kg/m³ reference density
  double mixed_layer_m = 25.0;      ///< Ekman layer depth
  double kappa_h = 50.0;            ///< m²/s horizontal diffusivity
  double kappa_v = 1e-4;            ///< m²/s vertical diffusivity
  double ssh_damping = 2e-6;        ///< s⁻¹ linear SSH damping
  double coastal_setdown_m = 2.5;   ///< m of SSH setdown per N/m² stress
  double coastal_adjust_rate = 2e-5;  ///< s⁻¹ approach to the setdown
  double upwelling_efficiency = 1.5e-3;  ///< m/s upwelling per N/m² stress
  double boundary_relax_rate = 5e-5;     ///< s⁻¹ at the open boundary
  std::size_t boundary_width = 3;        ///< relaxation sponge width (cells)
  double geostrophic_cap = 0.8;     ///< m/s cap on diagnosed currents
  // Stochastic forcing (per sqrt(hour) amplitudes of dη).
  double noise_temp = 0.02;         ///< °C /√h, surface level
  double noise_ssh = 0.0008;        ///< m /√h
  std::size_t noise_smooth_passes = 4;  ///< spatial correlation passes
};

/// The surrogate model. Holds the grid, parameters, wind forcing and the
/// climatology used for open-boundary relaxation. Stateless across calls
/// except for those immutables, so one instance can be shared by
/// concurrent ensemble members (each supplies its own state and RNG).
class OceanModel {
 public:
  /// `climatology` is copied and used as the boundary-relaxation target.
  OceanModel(const Grid3D& grid, const ModelParams& params,
             const WindForcing& forcing, const OceanState& climatology);

  /// Advance `state` by `dt_hours` starting at simulation time `t_hours`.
  /// If `rng` is provided, one Wiener increment of stochastic forcing is
  /// applied (scaled by sqrt(dt)); without it the step is deterministic.
  /// dt must not exceed max_stable_dt_hours().
  void step(OceanState& state, double t_hours, double dt_hours,
            Rng* rng = nullptr) const;

  /// Integrate from `t0_hours` for `duration_hours`, sub-stepping at (at
  /// most) max_stable_dt_hours(). Returns the number of steps taken.
  std::size_t run(OceanState& state, double t0_hours, double duration_hours,
                  Rng* rng = nullptr) const;

  /// Largest stable step for the advective CFL given the velocity cap.
  double max_stable_dt_hours() const;

  const Grid3D& grid() const { return grid_; }
  const ModelParams& params() const { return params_; }
  const WindForcing& forcing() const { return forcing_; }
  const OceanState& climatology() const { return climatology_; }

  /// Diagnose surface currents (geostrophic + Ekman) from a state at time
  /// t; exposed for tests and the acoustics slice extraction.
  void diagnose_currents(OceanState& state, double t_hours) const;

 private:
  void apply_stochastic_forcing(OceanState& state, double dt_hours,
                                Rng& rng) const;
  void relax_boundaries(OceanState& state, double dt_seconds) const;

  Grid3D grid_;
  ModelParams params_;
  WindForcing forcing_;
  OceanState climatology_;
};

}  // namespace essex::ocean
