// ESSEX: overlapping tile decomposition of the packed ocean state.
//
// Domain localization (DESIGN.md §14) cuts the Grid3D horizontal plane
// into tiles_x × tiles_y rectangles. Each tile OWNS a disjoint cell
// range (the owned rects partition the grid exactly), and is extended by
// a halo of `halo_cells` cells on every side (clamped at the domain
// edge) for overlap blending. Because the packed state layout interleaves
// variables and z-levels over the same horizontal plane, a tile's owned
// packed indices form a short list of contiguous runs — one per
// variable × z-level × row of cells — which is exactly the shard shape
// the sharded linalg reductions (la::dot_sharded and friends) and the
// differ's column store consume.
//
// Overlap blending uses per-column partition-of-unity weights: a tile
// has full weight on its owned cells and a linear rolloff across its
// halo; cover() normalizes over every covering tile so the weights sum
// to one at each horizontal cell. All z-levels and variables of a cell
// column share the cell's weight.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "linalg/gram.hpp"
#include "ocean/grid.hpp"

namespace essex::ocean {

/// Tile-decomposition knobs. The defaults (a single tile, no halo)
/// describe the degenerate global domain.
struct TilingParams {
  std::size_t tiles_x = 1;    ///< tiles across the x (east) axis
  std::size_t tiles_y = 1;    ///< tiles across the y (north) axis
  std::size_t halo_cells = 2; ///< blending halo radius, in grid cells
};

/// One tile's cell rectangles, half-open in both axes.
struct TileRect {
  std::size_t x0 = 0, x1 = 0;   ///< owned cells, disjoint across tiles
  std::size_t y0 = 0, y1 = 0;
  std::size_t hx0 = 0, hx1 = 0; ///< owned + halo, clamped to the grid
  std::size_t hy0 = 0, hy1 = 0;

  bool owns(std::size_t ix, std::size_t iy) const {
    return ix >= x0 && ix < x1 && iy >= y0 && iy < y1;
  }
  bool covers(std::size_t ix, std::size_t iy) const {
    return ix >= hx0 && ix < hx1 && iy >= hy0 && iy < hy1;
  }
};

/// The immutable tile decomposition of one grid. Owns no state data —
/// only geometry: extents, packed-index run lists and blending weights.
class Tiling {
 public:
  /// Requires 1 ≤ tiles_x ≤ grid.nx() and 1 ≤ tiles_y ≤ grid.ny() so
  /// every tile owns at least one cell. Any halo is accepted (clamping
  /// keeps the geometry valid); workflow::validate() flags halos that
  /// reach past the nearest neighbour as a configuration smell.
  Tiling(const Grid3D& grid, const TilingParams& params);

  std::size_t tiles_x() const { return tiles_x_; }
  std::size_t tiles_y() const { return tiles_y_; }
  std::size_t tile_count() const { return tiles_.size(); }
  std::size_t halo_cells() const { return halo_; }
  const TileRect& tile(std::size_t t) const { return tiles_[t]; }

  std::size_t nx() const { return nx_; }
  std::size_t ny() const { return ny_; }
  std::size_t nz() const { return nz_; }

  /// Packed-state length this tiling was built for:
  /// 4·nx·ny·nz + nx·ny (the OceanState pack contract).
  std::size_t packed_size() const { return 4 * points_ + nx_ * ny_; }

  /// Packed index of 3-D variable `var` ∈ {0:T, 1:S, 2:u, 3:v} at cell
  /// (ix, iy, iz) — matches Grid3D::index and OceanState::pack.
  std::size_t var_index(std::size_t var, std::size_t ix, std::size_t iy,
                        std::size_t iz) const {
    return var * points_ + (iz * ny_ + iy) * nx_ + ix;
  }
  /// Packed index of SSH at cell (ix, iy).
  std::size_t ssh_index(std::size_t ix, std::size_t iy) const {
    return 4 * points_ + iy * nx_ + ix;
  }

  /// Tile that owns cell (ix, iy).
  std::size_t owner_of(std::size_t ix, std::size_t iy) const;

  /// Tile t's owned packed rows as contiguous runs (the shard shape for
  /// la::dot_sharded et al.). Runs are ascending and disjoint; across
  /// all tiles they cover [0, packed_size()) exactly once.
  const la::RunList& owned_runs(std::size_t t) const {
    return owned_runs_[t];
  }
  /// All tiles' run lists, tile-major — the span the sharded reductions
  /// take.
  std::span<const la::RunList> shards() const { return owned_runs_; }

  /// Owned packed-row count of tile t: (x1-x0)·(y1-y0)·(4·nz + 1).
  std::size_t owned_points(std::size_t t) const;

  /// Partition-of-unity cover of cell (ix, iy): the tiles whose halo
  /// rect contains the cell, ascending tile id, with blending weights
  /// normalized to sum to 1. The owner is always present; with a zero
  /// halo it is the only entry with weight 1.
  std::vector<std::pair<std::size_t, double>> cover(std::size_t ix,
                                                    std::size_t iy) const;

  /// Horizontal distance (km) from point (x_km, y_km) to tile t's owned
  /// cell rectangle (0 inside). Cell (ix, iy) sits at (ix·dx, iy·dy),
  /// the same mapping the observation stencils use.
  double distance_km(std::size_t t, double x_km, double y_km) const;

 private:
  std::size_t nx_, ny_, nz_, points_;
  double dx_km_, dy_km_;
  std::size_t tiles_x_, tiles_y_, halo_;
  std::vector<TileRect> tiles_;
  std::vector<la::RunList> owned_runs_;
};

}  // namespace essex::ocean
