// ESSEX: output-return strategies for remote ensembles (paper §5.3.2).
//
// "When it comes to the output files, one has the choice of either a
// push model (from the remote execution hosts back to the home cluster)
// or a pull model (a pull-agent on the home cluster fetching files ...).
// The former ... results in a very large number of concurrent remote
// transfer attempts followed by no network activity whatsoever. This can
// seriously slow down the gateway nodes ... The pull model ... can pace
// the file transfers so that they happen more or less continuously and
// perform much better. A third alternative introduces a two-stage put
// strategy."
//
// simulate_output_return() replays a batch of member-completion times
// against a shared WAN gateway under each strategy and reports the
// latency/burstiness metrics that paragraph argues about.
#pragma once

#include <cstddef>
#include <vector>

#include "mtc/job.hpp"

namespace essex::telemetry {
class Sink;
}

namespace essex::mtc {

struct OutputReturnConfig {
  OutputTransfer strategy = OutputTransfer::kPushImmediate;
  double file_bytes = 11e6;        ///< per member (§5.4.2)
  double gateway_bps = 50e6;       ///< WAN bandwidth site → home
  double site_fs_bps = 500e6;      ///< site-shared filesystem (two-stage)
  /// Per-connection startup cost (scp/gsiftp handshake). Pull and the
  /// two-stage agent reuse one channel; pushes pay it per member.
  double connection_setup_s = 1.0;
  /// Pull/two-stage agents move files over this many parallel streams.
  std::size_t agent_streams = 4;
  /// Optional telemetry sink (nullable, not owned): records the
  /// `output.*` series — per-file `output.latency_s` histogram, a
  /// `output.wan_flows` event stream (gateway burstiness over simulated
  /// time) and the summary gauges of OutputReturnMetrics.
  telemetry::Sink* sink = nullptr;
};

struct OutputReturnMetrics {
  double all_home_s = 0;       ///< last file landed home (from batch start)
  double mean_latency_s = 0;   ///< mean (file home − member finished)
  double max_latency_s = 0;
  std::size_t peak_concurrent_wan = 0;  ///< gateway connection burst size
  double gateway_busy_s = 0;   ///< seconds the WAN link was moving bytes
};

/// Replay `completion_times_s` (one per member, from the batch start)
/// under the chosen strategy. Completion times need not be sorted.
OutputReturnMetrics simulate_output_return(
    const std::vector<double>& completion_times_s,
    const OutputReturnConfig& config);

}  // namespace essex::mtc
