#include "mtc/scheduler.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/telemetry.hpp"

namespace essex::mtc {

SchedulerParams sge_params() { return SchedulerParams{}; }

SchedulerParams condor_params(double negotiation_interval_s) {
  SchedulerParams p;
  p.negotiation_interval_s = negotiation_interval_s;
  p.dispatch_latency_s = 2.0;  // claiming handshake
  return p;
}

// ---- JobContext ---------------------------------------------------------

JobContext::JobContext(ClusterScheduler& sched, JobId id,
                       std::size_t node_index)
    : sched_(sched),
      id_(id),
      node_index_(node_index),
      rng_(sched.params_.faults.seed, id) {}

double JobContext::cpu_speed() const { return node().cpu_speed; }

const NodeSpec& JobContext::node() const {
  return sched_.cluster_.nodes[node_index_];
}

void JobContext::compute(double cpu_seconds_at_unit_speed,
                         std::function<void()> next) {
  ESSEX_REQUIRE(cpu_seconds_at_unit_speed >= 0, "negative compute time");
  const double wall = cpu_seconds_at_unit_speed / cpu_speed();
  auto self = shared_from_this();
  // Failure injection: the job may die part-way through this segment.
  if (sched_.params_.faults.segment.probability > 0.0 &&
      rng_.uniform() < sched_.params_.faults.segment.probability) {
    const double frac = sched_.params_.faults.segment.fraction;
    sched_.sim_.after(wall * frac, [self, wall, frac] {
      if (!self->alive_) return;
      self->sched_.records_[self->id_].cpu_seconds += wall * frac;
      self->fail();
    });
    return;
  }
  sched_.sim_.after(wall, [self, wall, next = std::move(next)] {
    if (!self->alive_) return;
    self->sched_.records_[self->id_].cpu_seconds += wall;
    next();
  });
}

void JobContext::transfer(BandwidthResource& resource, double bytes,
                          std::function<void()> next) {
  const SimTime begin = sched_.sim_.now();
  auto self = shared_from_this();
  resource.start_transfer(bytes,
                          [self, begin, next = std::move(next)] {
                            if (!self->alive_) return;
                            self->sched_.records_[self->id_].io_seconds +=
                                self->sched_.sim_.now() - begin;
                            next();
                          });
}

void JobContext::local_io(double bytes, std::function<void()> next) {
  const double secs = bytes / node().local_disk_bps;
  auto self = shared_from_this();
  sched_.sim_.after(secs, [self, secs, next = std::move(next)] {
    if (!self->alive_) return;
    self->sched_.records_[self->id_].io_seconds += secs;
    next();
  });
}

void JobContext::busy_wait(double seconds, std::function<void()> next) {
  ESSEX_REQUIRE(seconds >= 0, "negative busy wait");
  auto self = shared_from_this();
  sched_.sim_.after(seconds, [self, seconds, next = std::move(next)] {
    if (!self->alive_) return;
    self->sched_.records_[self->id_].cpu_seconds += seconds;
    next();
  });
}

void JobContext::wait(double seconds, std::function<void()> next) {
  ESSEX_REQUIRE(seconds >= 0, "negative wait");
  auto self = shared_from_this();
  sched_.sim_.after(seconds, [self, seconds, next = std::move(next)] {
    if (!self->alive_) return;
    self->sched_.records_[self->id_].io_seconds += seconds;
    next();
  });
}

void JobContext::finish() {
  if (!alive_ || finished_) return;
  finished_ = true;
  sched_.job_done(id_, JobStatus::kDone);
}

void JobContext::fail() {
  if (!alive_ || finished_) return;
  finished_ = true;
  sched_.job_done(id_, JobStatus::kFailed);
}

// ---- ClusterScheduler ---------------------------------------------------

ClusterScheduler::ClusterScheduler(Simulator& sim, ClusterSpec cluster,
                                   SchedulerParams params)
    : sim_(sim),
      cluster_(std::move(cluster)),
      params_(params),
      outage_rng_(params.faults.seed, 0xFA177ULL) {
  nfs_ = std::make_unique<BandwidthResource>(
      sim_, cluster_.nfs_capacity_bps, cluster_.name + "-nfs");
  busy_cores_.resize(cluster_.nodes.size(), 0);
  node_down_.resize(cluster_.nodes.size(), false);
  // Nodes reserved by other users contribute no schedulable cores.
  for (std::size_t i = 0; i < cluster_.nodes.size(); ++i) {
    if (cluster_.nodes[i].reserved_by_others)
      busy_cores_[i] = cluster_.nodes[i].cores;
    else
      schedulable_cores_ += cluster_.nodes[i].cores;
  }
}

void ClusterScheduler::advance_occupancy() {
  const SimTime t = sim_.now();
  busy_core_seconds_ +=
      static_cast<double>(held_cores_) * (t - occupancy_since_);
  occupancy_since_ = t;
}

double ClusterScheduler::busy_core_seconds() const {
  return busy_core_seconds_ +
         static_cast<double>(held_cores_) * (sim_.now() - occupancy_since_);
}

void ClusterScheduler::note_queue_depth() {
  if (!telem_) return;
  telem_->gauge_set("sched.queue_depth",
                    static_cast<double>(queue_.size()));
  telem_->event("sched.queue_depth", sim_.now(),
                static_cast<double>(queue_.size()));
}

JobId ClusterScheduler::submit(JobBody body, std::size_t cores) {
  ESSEX_REQUIRE(body != nullptr, "job body must be callable");
  ESSEX_REQUIRE(cores >= 1, "a job needs at least one core");
  std::size_t max_node_cores = 0;
  for (const auto& n : cluster_.nodes)
    max_node_cores = std::max(max_node_cores, n.cores);
  ESSEX_REQUIRE(cores <= max_node_cores,
                "no node is large enough for this job");
  const JobId id = records_.size();
  JobRecord rec;
  rec.id = id;
  rec.cores = cores;
  // Submission overheads serialise on the master script.
  const double overhead = params_.use_job_arrays
                              ? params_.array_submit_overhead_s
                              : params_.submit_overhead_s;
  submit_ready_at_ = std::max(submit_ready_at_, sim_.now()) + overhead;
  rec.submitted = submit_ready_at_;
  records_.push_back(rec);
  contexts_.push_back(nullptr);
  if (telem_) telem_->count("sched.jobs_submitted");
  sim_.at(submit_ready_at_,
          [this, id, cores, body = std::move(body)]() mutable {
    queue_.push_back({id, std::move(body), cores});
    note_queue_depth();
    maybe_schedule_outage();
    if (params_.negotiation_interval_s > 0) {
      if (!negotiation_scheduled_) {
        negotiation_scheduled_ = true;
        const double interval = params_.negotiation_interval_s;
        const double next_cycle =
            (std::floor(sim_.now() / interval) + 1.0) * interval;
        sim_.at(next_cycle, [this] { negotiation_cycle(); });
      }
    } else {
      try_dispatch();
    }
  });
  return id;
}

std::vector<JobId> ClusterScheduler::submit_array(
    std::vector<JobBody> bodies) {
  std::vector<JobId> ids;
  ids.reserve(bodies.size());
  for (auto& b : bodies) ids.push_back(submit(std::move(b)));
  return ids;
}

void ClusterScheduler::cancel(JobId id) {
  ESSEX_REQUIRE(id < records_.size(), "cancel: unknown job id");
  JobRecord& rec = records_[id];
  if (rec.status == JobStatus::kQueued) {
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (it->id == id) {
        queue_.erase(it);
        break;
      }
    }
    rec.status = JobStatus::kCancelled;
    rec.finished = sim_.now();
    if (telem_) {
      telem_->count("sched.jobs_cancelled");
      note_queue_depth();
    }
    if (hook_) hook_(rec);
    return;
  }
  if (rec.status == JobStatus::kRunning) {
    auto& ctx = contexts_[id];
    if (ctx) ctx->alive_ = false;
    job_done(id, JobStatus::kCancelled);
  }
}

void ClusterScheduler::set_completion_hook(CompletionHook hook) {
  hook_ = std::move(hook);
}

const JobRecord& ClusterScheduler::record(JobId id) const {
  ESSEX_REQUIRE(id < records_.size(), "record: unknown job id");
  return records_[id];
}

std::size_t ClusterScheduler::free_cores() const {
  std::size_t n = 0;
  for (std::size_t i = 0; i < cluster_.nodes.size(); ++i)
    n += cluster_.nodes[i].cores - busy_cores_[i];
  return n;
}

std::optional<std::size_t> ClusterScheduler::find_node_for(
    std::size_t cores) const {
  // Prefer faster nodes (SGE load formulas typically do).
  std::optional<std::size_t> best;
  for (std::size_t i = 0; i < cluster_.nodes.size(); ++i) {
    if (node_down_[i]) continue;
    if (busy_cores_[i] + cores > cluster_.nodes[i].cores) continue;
    if (!best || cluster_.nodes[i].cpu_speed >
                     cluster_.nodes[*best].cpu_speed) {
      best = i;
    }
  }
  return best;
}

std::optional<std::pair<std::size_t, std::size_t>>
ClusterScheduler::find_dispatchable() const {
  for (std::size_t pos = 0; pos < queue_.size(); ++pos) {
    const auto node = find_node_for(queue_[pos].cores);
    if (node) return std::make_pair(pos, *node);
    if (params_.strict_fifo) return std::nullopt;  // head blocks the queue
  }
  return std::nullopt;
}

void ClusterScheduler::dispatch_at(std::size_t queue_pos,
                                   std::size_t node_index) {
  Pending p = std::move(
      queue_[queue_pos]);
  queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(queue_pos));
  advance_occupancy();
  busy_cores_[node_index] += p.cores;
  held_cores_ += p.cores;
  ++running_;
  JobRecord& rec = records_[p.id];
  rec.status = JobStatus::kRunning;
  rec.node_index = node_index;
  if (telem_) {
    telem_->count("sched.jobs_dispatched");
    // Queue wait: job visible to the dispatcher → matched to a node. For
    // Condor dispatch this is dominated by the negotiation-cycle wait the
    // paper blames for its 10–20 % penalty (§5.2.1).
    const double wait = sim_.now() - rec.submitted;
    telem_->observe("sched.queue_wait_s", wait);
    if (params_.negotiation_interval_s > 0)
      telem_->observe("sched.negotiation_wait_s", wait);
    note_queue_depth();
  }
  auto ctx = std::shared_ptr<JobContext>(
      new JobContext(*this, p.id, node_index));
  contexts_[p.id] = ctx;
  sim_.after(params_.dispatch_latency_s,
             [this, id = p.id, ctx, body = std::move(p.body)] {
               if (!ctx->alive_) return;
               records_[id].started = sim_.now();
               body(*ctx);
             });
}

void ClusterScheduler::try_dispatch() {
  while (!queue_.empty()) {
    const auto match = find_dispatchable();
    if (!match) return;
    dispatch_at(match->first, match->second);
  }
}

void ClusterScheduler::negotiation_cycle() {
  if (telem_) telem_->count("sched.negotiation_cycles");
  // Match as many pending jobs as free cores allow, then sleep a cycle.
  while (!queue_.empty()) {
    const auto match = find_dispatchable();
    if (!match) break;
    dispatch_at(match->first, match->second);
  }
  if (!queue_.empty() || running_ > 0) {
    sim_.after(params_.negotiation_interval_s,
               [this] { negotiation_cycle(); });
  } else {
    negotiation_scheduled_ = false;
  }
}

void ClusterScheduler::release_cores(std::size_t node_index,
                                     std::size_t cores) {
  ESSEX_ASSERT(busy_cores_[node_index] >= cores, "releasing idle cores");
  ESSEX_ASSERT(held_cores_ >= cores, "releasing more cores than held");
  advance_occupancy();
  busy_cores_[node_index] -= cores;
  held_cores_ -= cores;
}

void ClusterScheduler::job_done(JobId id, JobStatus status) {
  JobRecord& rec = records_[id];
  ESSEX_ASSERT(rec.status == JobStatus::kRunning,
               "job_done on a non-running job");
  rec.status = status;
  rec.finished = sim_.now();
  release_cores(rec.node_index, rec.cores);
  --running_;
  contexts_[id] = nullptr;
  if (telem_) {
    switch (status) {
      case JobStatus::kDone: telem_->count("sched.jobs_done"); break;
      case JobStatus::kFailed: telem_->count("sched.jobs_failed"); break;
      case JobStatus::kEvicted: telem_->count("sched.jobs_evicted"); break;
      default: telem_->count("sched.jobs_cancelled"); break;
    }
    telem_->count("sched.cpu_seconds", rec.cpu_seconds);
    telem_->count("sched.io_seconds", rec.io_seconds);
    if (status == JobStatus::kDone)
      telem_->observe("sched.job_utilisation", rec.cpu_utilization());
  }
  if (hook_) hook_(rec);
  // SGE reassigns immediately; Condor waits for the next cycle (already
  // scheduled by negotiation_cycle()).
  if (params_.negotiation_interval_s <= 0) {
    try_dispatch();
  }
}

// ---- Node outages -------------------------------------------------------

void ClusterScheduler::maybe_schedule_outage() {
  if (params_.faults.outage.mtbf_s <= 0.0 || outage_scheduled_) return;
  outage_scheduled_ = true;
  const double gap =
      outage_rng_.exponential(1.0 / params_.faults.outage.mtbf_s);
  sim_.after(gap, [this] { outage_event(); });
}

void ClusterScheduler::outage_event() {
  outage_scheduled_ = false;
  // Pause while idle so the event queue can drain; submit() resumes us.
  if (queue_.empty() && running_ == 0) return;
  std::vector<std::size_t> up;
  for (std::size_t i = 0; i < cluster_.nodes.size(); ++i) {
    if (!node_down_[i] && !cluster_.nodes[i].reserved_by_others)
      up.push_back(i);
  }
  if (!up.empty()) {
    take_node_down(up[outage_rng_.uniform_index(up.size())]);
  }
  maybe_schedule_outage();
}

void ClusterScheduler::take_node_down(std::size_t node_index) {
  node_down_[node_index] = true;
  if (telem_) {
    telem_->count("sched.node_outages");
    telem_->event("sched.node_outage", sim_.now(),
                  static_cast<double>(node_index));
  }
  std::vector<JobId> victims;
  for (const auto& rec : records_) {
    if (rec.status == JobStatus::kRunning && rec.node_index == node_index)
      victims.push_back(rec.id);
  }
  for (JobId id : victims) {
    auto& ctx = contexts_[id];
    if (ctx) ctx->alive_ = false;
    job_done(id, JobStatus::kEvicted);
  }
  sim_.after(params_.faults.outage.duration_s, [this, node_index] {
    node_down_[node_index] = false;
    if (telem_) telem_->count("sched.node_recoveries");
    if (params_.negotiation_interval_s <= 0) try_dispatch();
  });
}

}  // namespace essex::mtc
