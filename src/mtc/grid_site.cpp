#include "mtc/grid_site.hpp"

namespace essex::mtc {

// Calibration notes (base shape: pert_cpu 1.21 s, pert_fs 5.0 s,
// pemodel_cpu 1531.33 s on a speed-1.0 core):
//   cpu_speed = 1531.33 / pemodel_measured
//   fs_factor = (pert_measured − pert_cpu/cpu_speed) / pert_fs

GridSite ornl_site() {
  GridSite s;
  s.name = "ORNL";
  s.processor = "Pentium4 3.06GHz";
  s.cpu_speed = 1531.33 / 1823.99;  // 0.8396
  s.fs_factor = (67.83 - 1.21 / s.cpu_speed) / 5.0;  // ≈13.3 (PVFS2)
  s.max_active_jobs = 128;
  s.queue_wait_mean_s = 1800.0;
  s.gateway_bps = 100e6;
  return s;
}

GridSite purdue_site() {
  GridSite s;
  s.name = "Purdue";
  s.processor = "Core2 2.33GHz";
  s.cpu_speed = 1531.33 / 1107.40;  // 1.383
  s.fs_factor = (6.25 - 1.21 / s.cpu_speed) / 5.0;  // ≈1.08
  s.max_active_jobs = 200;
  s.queue_wait_mean_s = 900.0;
  s.gateway_bps = 100e6;
  return s;
}

GridSite local_as_site() {
  GridSite s;
  s.name = "local";
  s.processor = "Opteron 250 2.4GHz";
  s.cpu_speed = 1.0;
  s.fs_factor = 1.0;
  s.max_active_jobs = 210;
  s.queue_wait_mean_s = 0.0;
  s.gateway_bps = 1250e6;
  return s;
}

std::vector<GridSite> table1_sites() {
  return {ornl_site(), purdue_site(), local_as_site()};
}

}  // namespace essex::mtc
