// ESSEX: demand-driven EC2 provisioning (paper §5.4.1).
//
// "Dynamic addition of EC2 nodes to an existing cluster - offered in
// product form by Univa (UniCloud) and Sun (Cloud Adapter in
// Hedeby/SDM). This last option automates the booting/termination of EC2
// nodes based on queuing system demand, further minimizing costs."
//
// CloudAutoscaler watches a queue-length signal and boots/terminates
// instances of one type, respecting boot latency, a minimum billing
// quantum (terminating mid-hour still pays the full hour) and an
// instance cap. run_autoscaled_batch() drives a whole member batch
// through it and reports makespan + bill, so a fixed fleet and an
// autoscaled fleet can be compared directly.
#pragma once

#include <cstddef>
#include <vector>

#include "mtc/cloud.hpp"
#include "mtc/job.hpp"
#include "mtc/sim.hpp"

namespace essex::telemetry {
class Sink;
}

namespace essex::mtc {

struct AutoscalerParams {
  InstanceType instance;
  std::size_t max_instances = 20;  ///< the paper's default EC2 cap
  std::size_t min_instances = 0;
  double boot_latency_s = 120.0;   ///< request → slots usable
  double poll_interval_s = 60.0;   ///< demand evaluation cadence
  /// Boot one instance per this many queued-but-unserved jobs.
  std::size_t jobs_per_instance_boot = 8;
  /// Optional telemetry sink (nullable, not owned): records the
  /// `autoscaler.*` series — boot/terminate events with the live fleet
  /// size (simulated time), plus the AutoscaleResult summary as
  /// counters/gauges.
  telemetry::Sink* sink = nullptr;
};

/// Outcome of one autoscaled (or fixed-fleet) batch.
struct AutoscaleResult {
  double makespan_s = 0;
  double cost_usd = 0;             ///< hourly-rounded instance charges
  double instance_hours = 0;
  std::size_t peak_instances = 0;
  std::size_t boots = 0;
  std::size_t members_done = 0;
  /// Mean busy instances over the run (efficiency of the fleet).
  double mean_busy_instances = 0;
};

/// Run `members` identical pemodel-style jobs (duration from `shape` on
/// the instance's speed) against an autoscaled fleet. Members arrive as
/// one batch at t = 0.
AutoscaleResult run_autoscaled_batch(const EsseJobShape& shape,
                                     std::size_t members,
                                     const AutoscalerParams& params);

/// Same workload on a fixed fleet of `instances` (booted at t = 0,
/// terminated when the batch drains) for comparison.
AutoscaleResult run_fixed_fleet_batch(const EsseJobShape& shape,
                                      std::size_t members,
                                      const InstanceType& instance,
                                      std::size_t instances,
                                      double boot_latency_s = 120.0);

}  // namespace essex::mtc
