#include "mtc/cloud.hpp"

#include <cmath>

#include "common/error.hpp"

namespace essex::mtc {

// Calibration (base shape: pert_cpu 1.21 s, pert_fs 5.0 s, pemodel_cpu
// 1531.33 s; see EsseJobShape):
//   cpu_speed = 1531.33 / pemodel_measured(worst of full batch)
//   fs_factor = (pert_measured − pert_cpu/cpu_speed) / 5.0
// Physical sanity: m1.small's cpu_speed ≈ 0.537 ≈ 0.5 × (2.6/2.4) — the
// 50 % throttle on an Opteron 2.6 GHz core, exactly the paper's reading.

InstanceType ec2_m1_small() {
  InstanceType t;
  t.name = "m1.small";
  t.processor = "Opt DC 2.6GHz";
  t.effective_cores = 0.5;
  t.schedulable_slots = 1;
  t.cpu_speed = 1531.33 / 2850.14;  // 0.537 = 0.5 throttle × 1.07 chip
  t.fs_factor = (13.53 - 1.21 / t.cpu_speed) / 5.0;  // ≈2.26
  t.price_per_hour = 0.10;
  return t;
}

InstanceType ec2_m1_large() {
  InstanceType t;
  t.name = "m1.large";
  t.processor = "Opt DC 2.0GHz";
  t.effective_cores = 2;
  t.schedulable_slots = 2;
  t.cpu_speed = 1531.33 / 1817.13;  // 0.843 ≈ 2.0/2.4
  t.fs_factor = (9.33 - 1.21 / t.cpu_speed) / 5.0;  // ≈1.58
  t.price_per_hour = 0.40;
  return t;
}

InstanceType ec2_m1_xlarge() {
  InstanceType t;
  t.name = "m1.xlarge";
  t.processor = "Opt DC 2.0GHz";
  t.effective_cores = 4;
  t.schedulable_slots = 4;
  t.cpu_speed = 1531.33 / 1860.81;  // 0.823 (4-way contention)
  t.fs_factor = (9.14 - 1.21 / t.cpu_speed) / 5.0;  // ≈1.53
  t.price_per_hour = 0.80;
  return t;
}

InstanceType ec2_c1_medium() {
  InstanceType t;
  t.name = "c1.medium";
  t.processor = "Core2 2.33GHz";
  t.effective_cores = 2;
  t.schedulable_slots = 2;
  t.cpu_speed = 1531.33 / 1008.11;  // 1.52
  t.fs_factor = (9.80 - 1.21 / t.cpu_speed) / 5.0;  // ≈1.80
  t.price_per_hour = 0.20;
  return t;
}

InstanceType ec2_c1_xlarge() {
  InstanceType t;
  t.name = "c1.xlarge";
  t.processor = "Core2 2.33GHz";
  t.effective_cores = 8;
  t.schedulable_slots = 8;
  t.cpu_speed = 1531.33 / 1030.42;  // 1.49 (8-way contention)
  t.fs_factor = (6.67 - 1.21 / t.cpu_speed) / 5.0;  // ≈1.17
  t.price_per_hour = 0.80;
  return t;
}

std::vector<InstanceType> table2_instances() {
  return {ec2_m1_small(), ec2_m1_large(), ec2_m1_xlarge(), ec2_c1_medium(),
          ec2_c1_xlarge()};
}

BillingMeter::BillingMeter(CloudPricing pricing) : pricing_(pricing) {}

void BillingMeter::charge_instances(double wall_seconds, std::size_t count,
                                    double price_per_hour) {
  ESSEX_REQUIRE(wall_seconds >= 0, "negative wall time");
  charge_instance_hours(wall_seconds / 3600.0, count, price_per_hour);
}

void BillingMeter::charge_instance_hours(double wall_hours, std::size_t count,
                                         double price_per_hour) {
  ESSEX_REQUIRE(wall_hours >= 0, "negative wall time");
  // "much like cell-phone charges usage of 1 hour 1 sec counts as 2
  // hours" — ceiling per instance. The one-part-in-10¹² slack keeps
  // round-off from unit conversions (hours → seconds → hours used to
  // inflate 11 h of usage to 12) below the billing boundary, while any
  // real overage — 3601 s = 1.00028 h — still rounds up.
  const double hours = std::ceil(wall_hours * (1.0 - 1e-12));
  instance_hours_ += hours * static_cast<double>(count);
  compute_cost_ += hours * static_cast<double>(count) * price_per_hour;
}

void BillingMeter::charge_transfer_in(double bytes) {
  ESSEX_REQUIRE(bytes >= 0, "negative transfer");
  transfer_in_cost_ += bytes / 1e9 * pricing_.transfer_in_per_gb;
}

void BillingMeter::charge_transfer_out(double bytes) {
  ESSEX_REQUIRE(bytes >= 0, "negative transfer");
  transfer_out_cost_ += bytes / 1e9 * pricing_.transfer_out_per_gb;
}

double BillingMeter::total_reserved() const {
  return compute_cost_ / pricing_.reserved_cpu_divisor + transfer_cost();
}

double ec2_campaign_cost(double input_gb, std::size_t members,
                         double output_mb_per_member, double wall_hours,
                         std::size_t instances, double price_per_hour,
                         const CloudPricing& pricing) {
  BillingMeter meter(pricing);
  meter.charge_transfer_in(input_gb * 1e9);
  meter.charge_transfer_out(static_cast<double>(members) *
                            output_mb_per_member * 1e6);
  meter.charge_instance_hours(wall_hours, instances, price_per_hour);
  return meter.total();
}

}  // namespace essex::mtc
