#include "mtc/cluster.hpp"

#include "common/error.hpp"

namespace essex::mtc {

std::size_t ClusterSpec::total_cores() const {
  std::size_t n = 0;
  for (const auto& node : nodes) n += node.cores;
  return n;
}

std::size_t ClusterSpec::available_cores() const {
  std::size_t n = 0;
  for (const auto& node : nodes)
    if (!node.reserved_by_others) n += node.cores;
  return n;
}

ClusterSpec make_home_cluster(std::size_t busy_nodes) {
  ESSEX_REQUIRE(busy_nodes <= 114, "cannot reserve more than 114 nodes");
  ClusterSpec spec;
  spec.name = "home-cluster";
  spec.nfs_capacity_bps = 1250e6;  // 10 Gb/s
  spec.node_link_bps = 125e6;      // 1 Gb/s

  // 114 dual-socket single-core Opteron 250 (2.4 GHz) nodes.
  for (std::size_t i = 0; i < 114; ++i) {
    NodeSpec n;
    n.name = "opt250-" + std::to_string(i);
    n.cores = 2;
    n.cpu_speed = 1.0;
    n.reserved_by_others = i < busy_nodes;
    spec.nodes.push_back(n);
  }
  // 3 dual-socket dual-core Opteron 285 (2.6 GHz) replacement nodes.
  for (std::size_t i = 0; i < 3; ++i) {
    NodeSpec n;
    n.name = "opt285-" + std::to_string(i);
    n.cores = 4;
    n.cpu_speed = 2.6 / 2.4;
    spec.nodes.push_back(n);
  }
  // Shanghai-generation head node (runs the master script, differ, SVD).
  NodeSpec head;
  head.name = "head-opt2380";
  head.cores = 8;
  head.cpu_speed = 2.5 / 2.4 * 1.35;  // newer core, higher IPC
  spec.nodes.push_back(head);
  return spec;
}

}  // namespace essex::mtc
