// ESSEX: cluster hardware description (paper §5.2).
//
// The paper's home cluster: 114 dual-socket Opteron 250 nodes, 3
// dual-socket dual-core Opteron 285 replacements, a Shanghai-generation
// head node, an 18 TB NFS fileserver on a 10 Gb/s uplink and gigabit
// node links in a star topology. Speeds are expressed relative to one
// Opteron 250 @ 2.4 GHz core = 1.0, the unit the paper's Table 1 "local"
// row measures.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace essex::mtc {

/// One execution host.
struct NodeSpec {
  std::string name;
  std::size_t cores = 1;
  double cpu_speed = 1.0;  ///< relative to local Opteron 250 @2.4 GHz
  double local_disk_bps = 200e6;  ///< local scratch read bandwidth
  bool reserved_by_others = false;  ///< cores in use by other users
};

/// A cluster: nodes + shared file server + star network.
struct ClusterSpec {
  std::string name;
  std::vector<NodeSpec> nodes;
  double nfs_capacity_bps = 1250e6;  ///< 10 Gb/s fileserver uplink
  double node_link_bps = 125e6;      ///< 1 Gb/s per node

  std::size_t total_cores() const;
  /// Cores on nodes not reserved by other users.
  std::size_t available_cores() const;
};

/// The MSEAS-like home cluster of §5.2. `busy_nodes` marks that many
/// Opteron 250 nodes as in use by other users — the paper ran with ~210
/// of 240 cores free, i.e. busy_nodes = 15.
ClusterSpec make_home_cluster(std::size_t busy_nodes = 15);

}  // namespace essex::mtc
