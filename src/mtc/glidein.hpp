// ESSEX: pilot-job overlays (paper §5.3.1).
//
// "One other possibility ... is the use of Personal Condor ... connecting
// via Condor-Glidein to both the local Condor pool and the remote
// clusters. A related effort ... is the use of the MyCluster software
// that makes a collection of remote and local resources appear as one
// large Condor or SGE controlled cluster."
//
// The mechanism: *pilot* jobs are submitted to each remote batch queue;
// each pilot waits out the queue once and then contributes slots to the
// user's personal overlay for its walltime lease. Ensemble members then
// stream through the overlay without ever touching a remote queue —
// versus direct remote submission, where every member pays its own queue
// wait. run_glidein_ensemble()/run_direct_submission() quantify that
// trade plus the glide-in-specific losses (idle pilot tails, leases too
// short to fit another member).
#pragma once

#include <cstddef>
#include <vector>

#include "mtc/grid_site.hpp"
#include "mtc/job.hpp"

namespace essex::mtc {

/// Pilots requested at one remote site.
struct GlideinSite {
  GridSite site;
  std::size_t pilots = 8;
  std::size_t slots_per_pilot = 2;
  double pilot_walltime_s = 4.0 * 3600.0;  ///< batch lease length
};

struct GlideinConfig {
  EsseJobShape shape;
  std::size_t members = 200;
  std::vector<GlideinSite> sites;
  /// Forecast deadline (0 = none): members not done by then are ignored
  /// (§4 point 3).
  double deadline_s = 0.0;
  std::uint64_t seed = 11;
};

struct GlideinResult {
  std::size_t members_done = 0;
  double makespan_s = 0;           ///< last member completion (or deadline)
  double time_to_first_slot_s = 0; ///< overlay becomes usable
  double slot_seconds_idle = 0;    ///< leased but unused pilot capacity
  double slot_seconds_total = 0;   ///< all leased capacity
  std::size_t lease_rejections = 0;  ///< member didn't fit a pilot's
                                     ///< remaining walltime
};

/// Run the ensemble through a glide-in overlay.
GlideinResult run_glidein_ensemble(const GlideinConfig& config);

/// Baseline: direct remote submission — every member pays its own queue
/// wait at its assigned site (members split round-robin across sites,
/// respecting each site's max_active_jobs).
GlideinResult run_direct_submission(const GlideinConfig& config);

}  // namespace essex::mtc
