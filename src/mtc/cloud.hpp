// ESSEX: EC2 cloud model (paper §5.4, Table 2) and the billing meter.
//
// Instance types carry per-core speed, an effective-core count (the paper
// observes m1.small is throttled to 50 % of one core), and an I/O factor
// for pert's filesystem part (virtualised disk/network). The cost model
// reproduces §5.4.2: per-GB transfer pricing plus hourly-rounded instance
// charges ("usage of 1 hour 1 sec counts as 2 hours").
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "mtc/job.hpp"

namespace essex::mtc {

/// An EC2 instance type of the 2009 menu.
struct InstanceType {
  std::string name;
  std::string processor;
  double effective_cores = 1.0;  ///< 0.5 for m1.small's throttle
  std::size_t schedulable_slots = 1;  ///< concurrent singletons per instance
  double cpu_speed = 1.0;  ///< per-slot pemodel speed vs local Opteron 250
  double fs_factor = 1.0;  ///< multiplier on pert's filesystem part
  double price_per_hour = 0.0;  ///< on-demand USD/hr

  /// Worst-of-batch model times at full occupancy (the paper's Table 2
  /// methodology: "8 copies of pert/pemodel were run concurrently on a
  /// c1.xlarge"; "in each case the worst time of the batch is reported").
  double pert_seconds(const EsseJobShape& shape) const {
    return shape.pert_cpu_s / cpu_speed + shape.pert_fs_s * fs_factor;
  }
  double pemodel_seconds(const EsseJobShape& shape) const {
    return shape.pemodel_cpu_s / cpu_speed;
  }
};

/// Table 2 instance types (constants calibrated from the paper's own
/// measurements; see cloud.cpp for the derivations).
InstanceType ec2_m1_small();
InstanceType ec2_m1_large();
InstanceType ec2_m1_xlarge();
InstanceType ec2_c1_medium();
InstanceType ec2_c1_xlarge();
std::vector<InstanceType> table2_instances();

/// 2009-era EC2 pricing for data transfer and the reserved-instance
/// discount (§5.4.2/§5.4.3).
struct CloudPricing {
  double transfer_in_per_gb = 0.10;
  double transfer_out_per_gb = 0.17;
  /// "Use of reserved instances would drop pricing for the cpu usage by
  /// more than a factor of 3."
  double reserved_cpu_divisor = 3.2;
};

/// Billing meter for one cloud campaign.
class BillingMeter {
 public:
  explicit BillingMeter(CloudPricing pricing = CloudPricing{});

  /// Charge instance time: `wall_seconds` on `count` instances at
  /// `price_per_hour` each, rounded UP to whole hours per instance
  /// (3600 s bills 1 hour, 3601 s bills 2).
  void charge_instances(double wall_seconds, std::size_t count,
                        double price_per_hour);

  /// Same charge expressed in wall-clock hours. The ceiling forgives
  /// floating-point round-off: a duration that is a whole number of
  /// hours up to one part in 10¹² (e.g. 1.1 h × 10 accumulating to
  /// 11.000000000000002) bills the whole number, not an extra hour.
  void charge_instance_hours(double wall_hours, std::size_t count,
                             double price_per_hour);

  void charge_transfer_in(double bytes);
  void charge_transfer_out(double bytes);

  double compute_cost() const { return compute_cost_; }
  double transfer_cost() const { return transfer_in_cost_ + transfer_out_cost_; }
  double transfer_in_cost() const { return transfer_in_cost_; }
  double transfer_out_cost() const { return transfer_out_cost_; }
  double total() const { return compute_cost_ + transfer_cost(); }

  /// Total under reserved-instance pricing (compute divided by the
  /// reserved divisor; transfer unchanged).
  double total_reserved() const;

  double instance_hours() const { return instance_hours_; }

 private:
  CloudPricing pricing_;
  double compute_cost_ = 0.0;
  double transfer_in_cost_ = 0.0;
  double transfer_out_cost_ = 0.0;
  double instance_hours_ = 0.0;
};

/// The worked example of §5.4.2: 1.5 GB in, `members` × 11 MB out,
/// `hours` of wall time on `instances` instances at `price` USD/hr.
/// Returns the metered total (the paper computes $33.95 for 960 members,
/// 2 h × 20 × $0.80).
double ec2_campaign_cost(double input_gb, std::size_t members,
                         double output_mb_per_member, double wall_hours,
                         std::size_t instances, double price_per_hour,
                         const CloudPricing& pricing = CloudPricing{});

}  // namespace essex::mtc
