#include "mtc/fault.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/telemetry.hpp"
#include "mtc/execution_backend.hpp"

namespace essex::mtc {

std::string to_string(TaskState s) {
  switch (s) {
    case TaskState::kQueued: return "queued";
    case TaskState::kRunning: return "running";
    case TaskState::kFinished: return "finished";
  }
  return "?";
}

std::string to_string(TaskOutcome o) {
  switch (o) {
    case TaskOutcome::kDone: return "done";
    case TaskOutcome::kFailed: return "failed";
    case TaskOutcome::kTimedOut: return "timed_out";
    case TaskOutcome::kCancelled: return "cancelled";
    case TaskOutcome::kEvicted: return "evicted";
  }
  return "?";
}

namespace {

double quantile(std::vector<double> xs, double q) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const double pos = q * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

}  // namespace

FaultTolerantExecutor::FaultTolerantExecutor(ExecutionBackend& backend,
                                             FaultPolicy policy,
                                             telemetry::Sink* sink)
    : backend_(backend), policy_(std::move(policy)), sink_(sink) {
  ESSEX_REQUIRE(policy_.backoff_factor >= 1.0,
                "backoff factor must be >= 1");
  ESSEX_REQUIRE(policy_.backoff_jitter >= 0.0 &&
                    policy_.backoff_jitter < 1.0,
                "backoff jitter must be in [0, 1)");
  backend_.set_report_hook(
      [this](const TaskReport& r) { on_report(r); });
}

void FaultTolerantExecutor::set_member_hook(MemberHook hook) {
  std::lock_guard<std::mutex> lk(mu_);
  member_hook_ = std::move(hook);
}

void FaultTolerantExecutor::set_report_observer(ReportObserver observer) {
  std::lock_guard<std::mutex> lk(mu_);
  observer_ = std::move(observer);
}

void FaultTolerantExecutor::run_member(std::size_t member) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (shutdown_) return;
    ESSEX_REQUIRE(members_.find(member) == members_.end(),
                  "member already submitted to the fault layer");
    members_.emplace(member,
                     MemberState(Rng(policy_.seed, member + 1)));
  }
  launch(member, /*speculative=*/false);
}

void FaultTolerantExecutor::launch(std::size_t member, bool speculative) {
  std::size_t attempt_no = 0;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = members_.find(member);
    if (it == members_.end() || it->second.resolved || shutdown_) return;
    if (draining_ && speculative) return;
    MemberState& st = it->second;
    attempt_no = st.attempts_used++;
    st.live.push_back(Attempt{0, attempt_no, speculative, false});
    ++live_attempts_;
    if (speculative) {
      ++speculative_live_;
      ++stats_.speculative_launched;
      if (sink_) sink_->count("fault.speculative_launched");
    }
  }
  const TaskId id = backend_.submit(member, attempt_no);
  double timeout = 0.0;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = members_.find(member);
    if (it != members_.end()) {
      for (Attempt& a : it->second.live) {
        if (a.number == attempt_no) a.id = id;
      }
    }
    if (policy_.timeout_multiple > 0.0) {
      const double expected = expected_runtime_locked();
      if (expected > 0.0) timeout = policy_.timeout_multiple * expected;
    }
  }
  if (timeout > 0.0) {
    backend_.after(timeout, [this, member, attempt_no] {
      on_timeout(member, attempt_no);
    });
  }
  arm_straggler_timer();
}

double FaultTolerantExecutor::expected_runtime_locked() const {
  const double hinted = backend_.expected_runtime_s();
  if (hinted > 0.0) return hinted;
  if (durations_.size() >= policy_.straggler_min_samples) {
    return quantile(durations_, 0.5);
  }
  return 0.0;
}

double FaultTolerantExecutor::straggler_interval_locked() const {
  if (policy_.straggler_check_interval_s > 0.0) {
    return policy_.straggler_check_interval_s;
  }
  const double expected = expected_runtime_locked();
  return expected > 0.0 ? expected / 4.0 : 0.25;
}

void FaultTolerantExecutor::arm_straggler_timer() {
  double interval = 0.0;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (!policy_.speculate || shutdown_ || draining_ ||
        straggler_timer_armed_ || live_attempts_ == 0) {
      return;
    }
    straggler_timer_armed_ = true;
    interval = straggler_interval_locked();
  }
  backend_.after(interval, [this] {
    {
      std::lock_guard<std::mutex> lk(mu_);
      straggler_timer_armed_ = false;
      if (shutdown_ || draining_) return;
    }
    check_stragglers();
    arm_straggler_timer();
  });
}

void FaultTolerantExecutor::check_stragglers() {
  struct Candidate {
    std::size_t member;
    TaskId id;
  };
  std::vector<Candidate> candidates;
  double threshold = 0.0;
  std::size_t budget = 0;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (!policy_.speculate || shutdown_ || draining_) return;
    if (durations_.size() < policy_.straggler_min_samples) return;
    if (speculative_live_ >= policy_.max_speculative) return;
    budget = policy_.max_speculative - speculative_live_;
    threshold =
        policy_.straggler_multiple * quantile(durations_, 0.95);
    for (const auto& [member, st] : members_) {
      // Only members with exactly one live attempt and no retry in
      // flight are speculation candidates (one backup copy at a time).
      if (st.resolved || st.retry_pending || st.live.size() != 1)
        continue;
      if (st.live[0].id == 0) continue;
      candidates.push_back(Candidate{member, st.live[0].id});
    }
  }
  if (threshold <= 0.0) return;
  const double t = backend_.now();
  for (const Candidate& c : candidates) {
    if (budget == 0) break;
    const TaskReport r = backend_.poll(c.id);
    if (r.state != TaskState::kRunning || r.started <= 0.0) continue;
    if (t - r.started <= threshold) continue;
    launch(c.member, /*speculative=*/true);
    --budget;
  }
}

void FaultTolerantExecutor::on_timeout(std::size_t member,
                                       std::size_t attempt_number) {
  TaskId id = 0;
  double timeout = 0.0;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = members_.find(member);
    if (it == members_.end() || it->second.resolved || shutdown_) return;
    for (const Attempt& a : it->second.live) {
      if (a.number == attempt_number && !a.timed_out) {
        id = a.id;
        break;
      }
    }
    timeout = policy_.timeout_multiple * expected_runtime_locked();
  }
  if (id == 0 || timeout <= 0.0) return;
  // The timeout budget covers *run* time, not queue wait: a queued (or
  // recently started) attempt gets its timer pushed out instead of being
  // killed for the scheduler's backlog.
  const TaskReport r = backend_.poll(id);
  if (r.state == TaskState::kFinished) return;  // report on its way
  if (r.state == TaskState::kQueued) {
    backend_.after(timeout, [this, member, attempt_number] {
      on_timeout(member, attempt_number);
    });
    return;
  }
  const double elapsed = backend_.now() - r.started;
  if (elapsed + 1e-9 < timeout) {
    backend_.after(timeout - elapsed, [this, member, attempt_number] {
      on_timeout(member, attempt_number);
    });
    return;
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = members_.find(member);
    if (it == members_.end() || it->second.resolved || shutdown_) return;
    bool found = false;
    for (Attempt& a : it->second.live) {
      if (a.number == attempt_number && !a.timed_out) {
        a.timed_out = true;
        found = true;
        break;
      }
    }
    if (!found) return;
    ++stats_.timeouts;
    if (sink_) sink_->count("fault.timeouts");
  }
  // The cancel surfaces as a kCancelled report which on_report rewrites
  // to kTimedOut (the attempt carries the timed_out mark) and routes
  // through the retry path.
  backend_.cancel(id);
}

void FaultTolerantExecutor::resolve_locked(MemberState& st,
                                           std::size_t /*member*/,
                                           TaskOutcome outcome) {
  st.resolved = true;
  ++members_resolved_;
  if (outcome == TaskOutcome::kDone) {
    ++stats_.members_done;
  } else if (outcome == TaskOutcome::kCancelled) {
    ++stats_.members_cancelled;
  } else {
    ++stats_.members_lost;
    if (sink_) sink_->count("fault.members_lost");
  }
}

void FaultTolerantExecutor::on_report(const TaskReport& report) {
  enum class Action { kNone, kRetry, kResolved };
  Action action = Action::kNone;
  TaskOutcome final_outcome = TaskOutcome::kDone;
  double backoff = 0.0;
  std::vector<TaskId> cancels;
  MemberHook hook;
  ReportObserver observer;

  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = members_.find(report.member);
    if (it == members_.end()) return;
    MemberState& st = it->second;
    auto ait = std::find_if(st.live.begin(), st.live.end(),
                            [&](const Attempt& a) {
                              return a.number == report.attempt;
                            });
    if (ait == st.live.end()) return;  // late duplicate, already handled
    const Attempt attempt = *ait;
    st.live.erase(ait);
    --live_attempts_;
    if (attempt.speculative && speculative_live_ > 0) --speculative_live_;

    TaskOutcome outcome = report.outcome;
    if (attempt.timed_out && outcome == TaskOutcome::kCancelled) {
      outcome = TaskOutcome::kTimedOut;
    }

    observer = observer_;
    if (st.resolved || shutdown_) {
      // Sibling of a resolved member, or teardown: bookkeeping only.
    } else if (outcome == TaskOutcome::kDone) {
      if (report.finished > report.started && report.started > 0.0) {
        durations_.push_back(report.finished - report.started);
      }
      if (attempt.speculative) {
        ++stats_.speculative_won;
        if (sink_) sink_->count("fault.speculative_won");
      }
      for (const Attempt& other : st.live) {
        if (other.id != 0) cancels.push_back(other.id);
      }
      resolve_locked(st, report.member, TaskOutcome::kDone);
      action = Action::kResolved;
      final_outcome = TaskOutcome::kDone;
      hook = member_hook_;
    } else {
      switch (outcome) {
        case TaskOutcome::kFailed:
          ++stats_.failed_attempts;
          if (sink_) sink_->count("fault.failed_attempts");
          break;
        case TaskOutcome::kEvicted:
          ++stats_.evictions;
          if (sink_) sink_->count("fault.evictions");
          break;
        default:
          break;  // timeouts counted when the timeout fired
      }
      if (outcome != TaskOutcome::kCancelled) ++st.failed_attempts;
      if (!st.live.empty()) {
        // A sibling attempt is still in flight; let it race.
      } else if (outcome != TaskOutcome::kCancelled && !draining_ &&
                 st.failed_attempts <= policy_.max_retries) {
        ++stats_.retries;
        if (sink_) sink_->count("fault.retries");
        st.retry_pending = true;
        ++retries_pending_;
        const double spread =
            policy_.backoff_jitter > 0.0
                ? st.rng.uniform(-policy_.backoff_jitter,
                                 policy_.backoff_jitter)
                : 0.0;
        backoff = policy_.backoff_base_s *
                  std::pow(policy_.backoff_factor,
                           static_cast<double>(st.failed_attempts - 1)) *
                  (1.0 + spread);
        action = Action::kRetry;
      } else {
        resolve_locked(st, report.member, outcome);
        action = Action::kResolved;
        final_outcome = outcome;
        hook = member_hook_;
      }
    }
  }

  for (TaskId id : cancels) backend_.cancel(id);
  if (action == Action::kRetry) {
    backend_.after(backoff, [this, member = report.member] {
      on_retry_timer(member);
    });
  }
  if (action == Action::kResolved && hook) {
    hook(report.member, final_outcome);
  }
  if (observer) observer(report);
}

void FaultTolerantExecutor::on_retry_timer(std::size_t member) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = members_.find(member);
    if (it == members_.end()) return;
    MemberState& st = it->second;
    if (!st.retry_pending) return;
    st.retry_pending = false;
    --retries_pending_;
    if (st.resolved || shutdown_ || draining_) return;
  }
  launch(member, /*speculative=*/false);
}

void FaultTolerantExecutor::cancel_member(std::size_t member) {
  std::vector<TaskId> cancels;
  MemberHook hook;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = members_.find(member);
    if (it == members_.end() || it->second.resolved) return;
    MemberState& st = it->second;
    if (st.retry_pending) {
      st.retry_pending = false;
      --retries_pending_;
    }
    for (const Attempt& a : st.live) {
      if (a.id != 0) cancels.push_back(a.id);
    }
    resolve_locked(st, member, TaskOutcome::kCancelled);
    hook = member_hook_;
  }
  for (TaskId id : cancels) backend_.cancel(id);
  if (hook) hook(member, TaskOutcome::kCancelled);
}

void FaultTolerantExecutor::cancel_all() {
  std::vector<TaskId> cancels;
  {
    std::lock_guard<std::mutex> lk(mu_);
    shutdown_ = true;
    retries_pending_ = 0;
    for (auto& [member, st] : members_) {
      st.retry_pending = false;
      for (const Attempt& a : st.live) {
        if (a.id != 0) cancels.push_back(a.id);
      }
    }
  }
  for (TaskId id : cancels) backend_.cancel(id);
}

void FaultTolerantExecutor::enter_drain_mode() {
  std::vector<std::size_t> abandoned;
  {
    std::lock_guard<std::mutex> lk(mu_);
    draining_ = true;
    // Pending retries will not relaunch; resolve those members now so
    // drain detection does not wait on timers that act as no-ops.
    for (auto& [member, st] : members_) {
      if (!st.resolved && st.retry_pending && st.live.empty()) {
        abandoned.push_back(member);
      }
    }
  }
  for (std::size_t m : abandoned) cancel_member(m);
}

bool FaultTolerantExecutor::idle() const {
  std::lock_guard<std::mutex> lk(mu_);
  return live_attempts_ == 0 && retries_pending_ == 0;
}

std::vector<std::pair<std::size_t, TaskReport>>
FaultTolerantExecutor::live_members() const {
  std::vector<std::pair<std::size_t, TaskId>> ids;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (const auto& [member, st] : members_) {
      if (st.resolved || st.live.empty()) continue;
      if (st.live.front().id == 0) continue;
      ids.emplace_back(member, st.live.front().id);
    }
  }
  std::vector<std::pair<std::size_t, TaskReport>> out;
  out.reserve(ids.size());
  for (const auto& [member, id] : ids) {
    out.emplace_back(member, backend_.poll(id));
  }
  return out;
}

FaultStats FaultTolerantExecutor::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

std::size_t FaultTolerantExecutor::members_resolved() const {
  std::lock_guard<std::mutex> lk(mu_);
  return members_resolved_;
}

}  // namespace essex::mtc
