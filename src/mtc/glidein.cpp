#include "mtc/glidein.hpp"

#include <algorithm>
#include <memory>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "mtc/sim.hpp"

namespace essex::mtc {

namespace {

struct Pilot {
  std::size_t site = 0;
  SimTime active_at = 0;
  SimTime expires_at = 0;
  std::size_t busy = 0;
  std::size_t slots = 0;
  double busy_integral = 0;  // slot-seconds actually used
  SimTime last_t = 0;
};

struct Overlay {
  Simulator sim;
  GlideinConfig cfg;
  std::vector<Pilot> pilots;
  std::vector<double> member_seconds_per_site;
  std::size_t pending = 0;
  std::size_t done = 0;
  double makespan = 0;
  double first_slot = -1;
  std::size_t lease_rejections = 0;
  bool deadline_hit = false;

  void integrate(Pilot& p) {
    const SimTime t = sim.now();
    const SimTime capped = std::min(t, p.expires_at);
    if (capped > p.last_t && t >= p.active_at) {
      p.busy_integral += static_cast<double>(p.busy) * (capped - p.last_t);
    }
    p.last_t = std::max(p.last_t, capped);
  }

  void match() {
    if (deadline_hit) return;
    for (std::size_t k = 0; k < pilots.size() && pending > 0; ++k) {
      Pilot& p = pilots[k];
      const SimTime now = sim.now();
      if (now < p.active_at || now >= p.expires_at) continue;
      const double job = member_seconds_per_site[p.site];
      while (p.busy < p.slots && pending > 0) {
        // Condor-style lease check: does the job fit the remaining
        // walltime of this pilot?
        if (now + job > p.expires_at) {
          ++lease_rejections;
          break;
        }
        integrate(p);
        --pending;
        ++p.busy;
        sim.after(job, [this, k] {
          Pilot& pp = pilots[k];
          integrate(pp);
          --pp.busy;
          if (!deadline_hit) {
            ++done;
            makespan = sim.now();
          }
          match();
        });
      }
    }
  }
};

GlideinResult summarize(const Overlay& ov) {
  GlideinResult out;
  out.members_done = ov.done;
  out.makespan_s = ov.makespan;
  out.time_to_first_slot_s = std::max(ov.first_slot, 0.0);
  out.lease_rejections = ov.lease_rejections;
  for (const auto& p : ov.pilots) {
    const double leased =
        static_cast<double>(p.slots) * (p.expires_at - p.active_at);
    out.slot_seconds_total += leased;
    out.slot_seconds_idle += leased - p.busy_integral;
  }
  return out;
}

}  // namespace

GlideinResult run_glidein_ensemble(const GlideinConfig& config) {
  ESSEX_REQUIRE(config.members >= 1, "need at least one member");
  ESSEX_REQUIRE(!config.sites.empty(), "need at least one glide-in site");

  auto ov = std::make_shared<Overlay>();
  ov->cfg = config;
  ov->pending = config.members;
  Rng rng(config.seed);

  for (std::size_t s = 0; s < config.sites.size(); ++s) {
    const GlideinSite& gs = config.sites[s];
    ESSEX_REQUIRE(gs.pilots >= 1 && gs.slots_per_pilot >= 1,
                  "site needs pilots and slots");
    ov->member_seconds_per_site.push_back(
        gs.site.pert_seconds(config.shape) +
        gs.site.pemodel_seconds(config.shape));
    for (std::size_t p = 0; p < gs.pilots; ++p) {
      Pilot pilot;
      pilot.site = s;
      pilot.active_at = gs.site.sample_queue_wait(rng);
      pilot.expires_at = pilot.active_at + gs.pilot_walltime_s;
      pilot.slots = gs.slots_per_pilot;
      pilot.last_t = pilot.active_at;
      const std::size_t idx = ov->pilots.size();
      ov->pilots.push_back(pilot);
      ov->sim.at(pilot.active_at, [ov, idx] {
        if (ov->first_slot < 0) ov->first_slot = ov->sim.now();
        ov->match();
        (void)idx;
      });
    }
  }
  if (config.deadline_s > 0) {
    ov->sim.at(config.deadline_s, [ov] { ov->deadline_hit = true; });
  }
  ov->sim.run();
  return summarize(*ov);
}

GlideinResult run_direct_submission(const GlideinConfig& config) {
  ESSEX_REQUIRE(config.members >= 1, "need at least one member");
  ESSEX_REQUIRE(!config.sites.empty(), "need at least one site");

  Simulator sim;
  Rng rng(config.seed);
  std::size_t done = 0;
  double makespan = 0;
  double first_start = -1;
  bool deadline_hit = false;
  if (config.deadline_s > 0) {
    sim.at(config.deadline_s, [&] { deadline_hit = true; });
  }

  // Round-robin members over sites; each member queues independently and
  // the site's active-job throttle serialises the excess.
  for (std::size_t s = 0; s < config.sites.size(); ++s) {
    const GridSite& site = config.sites[s].site;
    const double job = site.pert_seconds(config.shape) +
                       site.pemodel_seconds(config.shape);
    std::size_t assigned = 0;
    for (std::size_t m = s; m < config.members;
         m += config.sites.size()) {
      ++assigned;
    }
    // Active-job throttle: batches of max_active_jobs, each member with
    // its own queue wait (fresh submission each time).
    const std::size_t lanes =
        std::max<std::size_t>(1, std::min<std::size_t>(
                                     site.max_active_jobs, assigned));
    std::vector<double> lane_free(lanes, 0.0);
    for (std::size_t j = 0; j < assigned; ++j) {
      const std::size_t lane = j % lanes;
      const double wait = site.sample_queue_wait(rng);
      const double start = std::max(lane_free[lane], 0.0) + wait;
      const double end = start + job;
      lane_free[lane] = end;
      if (first_start < 0 || start < first_start) first_start = start;
      sim.at(end, [&, end] {
        if (deadline_hit) return;
        ++done;
        makespan = sim.now();
      });
    }
  }
  sim.run();

  GlideinResult out;
  out.members_done = done;
  out.makespan_s = makespan;
  out.time_to_first_slot_s = std::max(first_start, 0.0);
  return out;
}

}  // namespace essex::mtc
