// ESSEX: discrete-event simulation engine.
//
// The paper's evaluation (§5) is about throughput, contention and
// scheduling phenomena on a 240-core cluster, TeraGrid sites and EC2.
// Those machines are gone; a deterministic DES calibrated with the
// paper's own per-task timings reproduces the *shape* of its results.
// The engine is a plain time-ordered event queue; shared I/O (the NFS
// server, gateway links) is modelled by BandwidthResource, an exact
// processor-sharing queue.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <queue>
#include <string>
#include <vector>

namespace essex::mtc {

/// Simulated seconds since the simulation epoch.
using SimTime = double;

/// Deterministic discrete-event scheduler.
class Simulator {
 public:
  using Callback = std::function<void()>;

  SimTime now() const { return now_; }

  /// Schedule `fn` at absolute time `t` (>= now). Events at equal times
  /// fire in scheduling order. Returns an id usable with cancel().
  std::uint64_t at(SimTime t, Callback fn);

  /// Schedule after a delay (>= 0).
  std::uint64_t after(SimTime delay, Callback fn);

  /// Cancel a pending event; cancelling an already-fired event is a no-op.
  void cancel(std::uint64_t id);

  /// Fire the next event; returns false when the queue is empty.
  bool step();

  /// Run until the queue drains or `t_end` passes (events after t_end
  /// stay queued). Returns the number of events fired.
  std::size_t run_until(SimTime t_end);

  /// Run until the queue drains entirely.
  std::size_t run();

  /// Number of pending events.
  std::size_t pending() const { return events_.size(); }

 private:
  struct Event {
    SimTime t;
    std::uint64_t seq;
    Callback fn;
    bool operator>(const Event& o) const {
      if (t != o.t) return t > o.t;
      return seq > o.seq;
    }
  };

  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> events_;
  std::vector<bool> cancelled_;  // indexed by seq
};

/// A shared link/server with fair (processor-sharing) bandwidth: k active
/// transfers each progress at capacity/k. Transfer completions are exact
/// — the resource recomputes the schedule whenever the flow set changes.
class BandwidthResource {
 public:
  /// `sim` must outlive the resource. `capacity` is in bytes/second.
  BandwidthResource(Simulator& sim, double capacity_bytes_per_s,
                    std::string name = {});

  /// Begin a transfer of `bytes`; `on_done` fires at its exact completion
  /// time under processor sharing. Zero-byte transfers complete
  /// immediately (next event). Returns a transfer id.
  std::uint64_t start_transfer(double bytes, Simulator::Callback on_done);

  /// Number of in-flight transfers.
  std::size_t active() const { return flows_.size(); }

  /// Total bytes moved through the resource so far (including partial
  /// progress of active flows).
  double bytes_moved() const;

  /// Busy time integral: seconds during which at least one flow was
  /// active (utilisation metric).
  double busy_seconds() const;

  const std::string& name() const { return name_; }
  double capacity() const { return capacity_; }

 private:
  struct Flow {
    double remaining;
    Simulator::Callback on_done;
  };

  void advance_progress();
  void reschedule();

  Simulator& sim_;
  double capacity_;
  std::string name_;
  std::map<std::uint64_t, Flow> flows_;
  std::uint64_t next_id_ = 1;
  SimTime last_update_ = 0.0;
  std::uint64_t pending_event_ = 0;
  bool has_pending_event_ = false;
  double bytes_done_ = 0.0;
  double busy_seconds_ = 0.0;
};

}  // namespace essex::mtc
