// ESSEX: job records and the calibrated ESSE workload shape.
//
// A "singleton" in the paper is one shell-script job: pert (read the
// 1.5 GB shared inputs, perturb) followed by pemodel (the PE model
// forecast) and a copy-back of ~11 MB of results. EsseJobShape carries
// the per-task costs calibrated from the paper's own measurements
// (Table 1 local row and §5.4.2): they are the DES's ground truth.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "mtc/sim.hpp"

namespace essex::mtc {

using JobId = std::uint64_t;

enum class JobStatus {
  kQueued,
  kRunning,
  kDone,
  kFailed,
  kCancelled,
  kEvicted,  ///< host lost mid-run (node outage, glide-in lease end)
};

/// Lifecycle record kept per job for the timing analyses.
struct JobRecord {
  JobId id = 0;
  JobStatus status = JobStatus::kQueued;
  SimTime submitted = 0;
  SimTime started = 0;
  SimTime finished = 0;
  std::size_t node_index = 0;
  std::size_t cores = 1;   ///< cores reserved on the node
  double cpu_seconds = 0;  ///< simulated compute time consumed
  double io_seconds = 0;   ///< simulated time blocked on I/O

  /// CPU utilisation over the job's span (the paper's ≈20% → ≈100%
  /// pert metric).
  double cpu_utilization() const {
    const double span = cpu_seconds + io_seconds;
    return span > 0 ? cpu_seconds / span : 0.0;
  }
};

/// Calibrated per-member costs of the ESSE workload, in seconds on a
/// speed-1.0 core (local Opteron 250) and bytes.
struct EsseJobShape {
  // pert: 6.21 s measured locally (Table 1) ≈ 1.21 s CPU + 5.0 s of
  // local-filesystem input handling at factor 1.0.
  double pert_cpu_s = 1.21;
  double pert_fs_s = 5.0;       ///< filesystem-dependent part, × fs factor
  double input_bytes = 1.5e9;   ///< shared input files (§5.4.2: 1.5 GB)
  // pemodel: 1531.33 s measured locally (Table 1).
  double pemodel_cpu_s = 1531.33;
  double output_bytes = 11e6;   ///< per-member result (§5.4.2: 11 MB)
  // master-side costs (differencing ~10⁶-point fields and a LAPACK SVD
  // of an n×n covariance are fast next to a 25-minute forecast):
  double diff_cpu_s = 0.5;      ///< differ work per member (serial, master)
  double svd_base_s = 10.0;     ///< SVD fixed cost
  double svd_per_member2_s = 2e-4;  ///< SVD scales ~ n² for n members
  // acoustics singleton (§5.2.1: "approximately 3 minutes").
  double acoustics_cpu_s = 180.0;
  double acoustics_output_bytes = 2e6;
  // OpenDAP staging (§5.3.2): "hundreds of requests to a central OpenDAP
  // server make it a less desirable solution" — each request pays a
  // server round-trip on top of the shared-bandwidth read.
  std::size_t opendap_requests = 400;
  double opendap_request_latency_s = 0.06;

  /// SVD wall time for an n-member covariance on a `speed` host.
  double svd_seconds(std::size_t n_members, double speed = 1.0) const {
    const double n = static_cast<double>(n_members);
    return (svd_base_s + svd_per_member2_s * n * n) / speed;
  }
};

/// Input staging strategies of §5.2.1/§5.3.2.
enum class InputStaging {
  kNfsDirect,      ///< singletons read the shared inputs over NFS
  kPrestageLocal,  ///< inputs copied to every local disk beforehand
  kOpenDapRemote,  ///< per-request reads from a central OpenDAP server
};

/// Output return strategies of §5.3.2.
enum class OutputTransfer {
  kPushImmediate,  ///< every node pushes its results home at job end
  kPullPaced,      ///< a home-side agent pulls results continuously
  kTwoStagePut,    ///< write to site-shared storage; an agent forwards
};

std::string to_string(JobStatus s);
std::string to_string(InputStaging s);
std::string to_string(OutputTransfer s);

}  // namespace essex::mtc
