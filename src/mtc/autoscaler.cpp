#include "mtc/autoscaler.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/error.hpp"
#include "common/telemetry.hpp"

namespace essex::mtc {

namespace {

struct Instance {
  SimTime requested_at = 0;
  SimTime usable_at = 0;
  std::size_t busy = 0;
  bool terminated = false;
  SimTime terminated_at = 0;
};

struct Fleet {
  Simulator sim;
  EsseJobShape shape;
  InstanceType type;
  double job_seconds = 0;
  std::size_t pending = 0;
  std::size_t done = 0;
  std::vector<Instance> instances;
  double busy_integral = 0;  // instance-seconds with >= 1 busy slot share
  SimTime last_integral_t = 0;
  std::size_t boots = 0;
  std::size_t peak = 0;

  void integrate() {
    const SimTime t = sim.now();
    double busy_now = 0;
    for (const auto& inst : instances) {
      if (inst.terminated || t < inst.usable_at) continue;
      busy_now += static_cast<double>(inst.busy) /
                  static_cast<double>(type.schedulable_slots);
    }
    busy_integral += busy_now * (t - last_integral_t);
    last_integral_t = t;
  }

  std::size_t live_instances() const {
    std::size_t n = 0;
    for (const auto& i : instances) n += !i.terminated;
    return n;
  }

  void start_jobs() {
    integrate();
    for (std::size_t k = 0; k < instances.size() && pending > 0; ++k) {
      Instance& inst = instances[k];
      if (inst.terminated || sim.now() < inst.usable_at) continue;
      while (inst.busy < type.schedulable_slots && pending > 0) {
        --pending;
        ++inst.busy;
        sim.after(job_seconds, [this, k] {
          integrate();
          --instances[k].busy;
          ++done;
          start_jobs();
        });
      }
    }
  }
};

double charge_hours(const Instance& inst, SimTime end_time) {
  const double alive =
      (inst.terminated ? inst.terminated_at : end_time) - inst.requested_at;
  return std::ceil(std::max(alive, 1.0) / 3600.0);
}

}  // namespace

AutoscaleResult run_autoscaled_batch(const EsseJobShape& shape,
                                     std::size_t members,
                                     const AutoscalerParams& params) {
  ESSEX_REQUIRE(members >= 1, "need at least one member");
  ESSEX_REQUIRE(params.max_instances >= 1, "need a positive instance cap");
  ESSEX_REQUIRE(params.jobs_per_instance_boot >= 1,
                "jobs_per_instance_boot must be >= 1");

  auto fleet = std::make_shared<Fleet>();
  fleet->shape = shape;
  fleet->type = params.instance;
  fleet->job_seconds = params.instance.pert_seconds(shape) +
                       params.instance.pemodel_seconds(shape);
  fleet->pending = members;

  double makespan = 0;

  // The demand-driven control loop.
  std::function<void()> poll = [&, fleet]() {
    fleet->integrate();
    if (fleet->done >= members) return;  // batch drained; stop polling

    // Capacity already owned or booting.
    std::size_t capacity = 0;
    for (const auto& inst : fleet->instances) {
      if (!inst.terminated)
        capacity += fleet->type.schedulable_slots;
    }
    std::size_t outstanding = fleet->pending;
    for (const auto& inst : fleet->instances) {
      if (!inst.terminated) outstanding += inst.busy;
    }
    // Boot toward the demand.
    if (outstanding > capacity) {
      const std::size_t deficit = outstanding - capacity;
      std::size_t to_boot =
          (deficit + params.jobs_per_instance_boot - 1) /
          params.jobs_per_instance_boot;
      to_boot = std::min(to_boot,
                         params.max_instances - fleet->live_instances());
      for (std::size_t b = 0; b < to_boot; ++b) {
        Instance inst;
        inst.requested_at = fleet->sim.now();
        inst.usable_at = fleet->sim.now() + params.boot_latency_s;
        fleet->instances.push_back(inst);
        ++fleet->boots;
        fleet->sim.at(inst.usable_at, [fleet] { fleet->start_jobs(); });
        if (params.sink)
          params.sink->event("autoscaler.boot", fleet->sim.now(),
                             static_cast<double>(fleet->live_instances()));
      }
      fleet->peak = std::max(fleet->peak, fleet->live_instances());
    }

    // Terminate idle instances once the queue is empty: the started
    // billing hour is sunk either way, but stopping now prevents the
    // next one ("automates the booting/termination ... further
    // minimizing costs").
    for (auto& inst : fleet->instances) {
      if (inst.terminated || inst.busy > 0) continue;
      if (fleet->sim.now() < inst.usable_at) continue;
      if (fleet->pending > 0) continue;  // still work to pull
      if (fleet->live_instances() <= params.min_instances) break;
      inst.terminated = true;
      inst.terminated_at = fleet->sim.now();
      if (params.sink)
        params.sink->event("autoscaler.terminate", fleet->sim.now(),
                           static_cast<double>(fleet->live_instances()));
    }

    fleet->sim.after(params.poll_interval_s, poll);
  };

  fleet->sim.after(0.0, poll);
  // Track batch completion time.
  // (The last job's completion happens inside start_jobs callbacks; we
  // read it from done afterwards via the simulator clock when drained.)
  fleet->sim.run();
  makespan = fleet->last_integral_t;

  AutoscaleResult out;
  out.makespan_s = makespan;
  out.members_done = fleet->done;
  out.boots = fleet->boots;
  out.peak_instances = fleet->peak;
  double hours = 0;
  for (const auto& inst : fleet->instances)
    hours += charge_hours(inst, makespan);
  out.instance_hours = hours;
  out.cost_usd = hours * params.instance.price_per_hour;
  out.mean_busy_instances =
      makespan > 0 ? fleet->busy_integral / makespan : 0;
  if (params.sink) {
    telemetry::Sink& sink = *params.sink;
    sink.count("autoscaler.boots", static_cast<double>(out.boots));
    sink.count("autoscaler.members_done",
               static_cast<double>(out.members_done));
    sink.gauge_set("autoscaler.makespan_s", out.makespan_s);
    sink.gauge_set("autoscaler.cost_usd", out.cost_usd);
    sink.gauge_set("autoscaler.instance_hours", out.instance_hours);
    sink.gauge_set("autoscaler.peak_instances",
                   static_cast<double>(out.peak_instances));
    sink.gauge_set("autoscaler.mean_busy_instances",
                   out.mean_busy_instances);
  }
  return out;
}

AutoscaleResult run_fixed_fleet_batch(const EsseJobShape& shape,
                                      std::size_t members,
                                      const InstanceType& instance,
                                      std::size_t instances,
                                      double boot_latency_s) {
  ESSEX_REQUIRE(members >= 1 && instances >= 1,
                "need at least one member and one instance");
  auto fleet = std::make_shared<Fleet>();
  fleet->shape = shape;
  fleet->type = instance;
  fleet->job_seconds =
      instance.pert_seconds(shape) + instance.pemodel_seconds(shape);
  fleet->pending = members;
  for (std::size_t i = 0; i < instances; ++i) {
    Instance inst;
    inst.requested_at = 0;
    inst.usable_at = boot_latency_s;
    fleet->instances.push_back(inst);
  }
  fleet->peak = instances;
  fleet->sim.at(boot_latency_s, [fleet] { fleet->start_jobs(); });
  fleet->sim.run();
  const double makespan = fleet->last_integral_t;

  AutoscaleResult out;
  out.makespan_s = makespan;
  out.members_done = fleet->done;
  out.boots = instances;
  out.peak_instances = instances;
  double hours = 0;
  for (const auto& inst : fleet->instances)
    hours += charge_hours(inst, makespan);
  out.instance_hours = hours;
  out.cost_usd = hours * instance.price_per_hour;
  out.mean_busy_instances =
      makespan > 0 ? fleet->busy_integral / makespan : 0;
  return out;
}

}  // namespace essex::mtc
