// ESSEX: batch-scheduler models (paper §5.2, SGE vs Condor).
//
// ClusterScheduler owns core allocation on a ClusterSpec and dispatches
// queued jobs according to either policy:
//
//  * SGE-like: event-driven — "the transition was immediate" when a core
//    frees; small per-job dispatch latency only.
//  * Condor-like: pending jobs are matched only at negotiation-cycle
//    boundaries — the paper attributes Condor's measured 10–20 % lower
//    throughput to exactly this reassignment wait.
//
// Job bodies are continuation-passing programs over a JobContext that
// exposes cancellable compute/transfer primitives, so the ESSE workflow
// can cancel queued *and* running members on convergence (§4.1).
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "mtc/cluster.hpp"
#include "mtc/fault.hpp"
#include "mtc/job.hpp"
#include "mtc/sim.hpp"

namespace essex::telemetry {
class Sink;
}

namespace essex::mtc {

class ClusterScheduler;

/// Per-job execution context: cancellable primitives that accumulate the
/// job's cpu/io accounting. All continuations are dropped silently if the
/// job has been killed. Instances are shared-pointer managed so pending
/// simulator events keep a killed job's context alive until they drain.
class JobContext : public std::enable_shared_from_this<JobContext> {
 public:
  /// CPU speed of the node this job landed on.
  double cpu_speed() const;
  const NodeSpec& node() const;
  std::size_t node_index() const { return node_index_; }

  /// Burn `cpu_seconds_at_unit_speed / cpu_speed()` of simulated time,
  /// then continue.
  void compute(double cpu_seconds_at_unit_speed,
               std::function<void()> next);

  /// Move `bytes` through a shared resource (NFS server, gateway link),
  /// accounting the elapsed time as I/O.
  void transfer(BandwidthResource& resource, double bytes,
                std::function<void()> next);

  /// Read `bytes` from the node's local disk (no contention modelled).
  void local_io(double bytes, std::function<void()> next);

  /// Busy time that does not scale with CPU speed (buffered local-
  /// filesystem handling); accounted as busy, not I/O wait.
  void busy_wait(double seconds, std::function<void()> next);

  /// Wait without consuming CPU (accounted as I/O).
  void wait(double seconds, std::function<void()> next);

  /// Mark the job complete; frees the core and fires the scheduler's
  /// completion hook. Must be called exactly once unless killed.
  void finish();

  /// Mark the job failed (failure injection); frees the core.
  void fail();

  bool alive() const { return alive_; }

 private:
  friend class ClusterScheduler;
  JobContext(ClusterScheduler& sched, JobId id, std::size_t node_index);

  ClusterScheduler& sched_;
  JobId id_;
  std::size_t node_index_;
  bool alive_ = true;
  bool finished_ = false;
  /// Per-job failure-injection stream, keyed (faults.seed, job id):
  /// enabling injection never perturbs any other stochastic draw, and
  /// job k draws the same stream regardless of scheduling order.
  Rng rng_;
};

/// Scheduling policy parameters.
struct SchedulerParams {
  /// Master-side cost of each job submission; job arrays amortise this
  /// ("for both SGE and Condor we used job arrays to lessen the load on
  /// the scheduler").
  double submit_overhead_s = 0.5;
  double array_submit_overhead_s = 0.02;
  bool use_job_arrays = true;
  /// Time from match to job start on the node.
  double dispatch_latency_s = 0.5;
  /// Condor: > 0 enables cycle-based matching every this many seconds;
  /// 0 = SGE-like event-driven dispatch.
  double negotiation_interval_s = 0.0;
  /// Strict FIFO: a queued multi-core job that does not fit blocks the
  /// queue. false = the dispatcher may backfill later jobs that fit.
  bool strict_fifo = false;
  /// Failure injection (per-job deaths, node outages).
  FaultInjection faults;
};

/// SGE-like defaults.
SchedulerParams sge_params();

/// Condor-like defaults (negotiation cycle tuned per §5.2.1: the paper
/// "tweaked the configuration files to diminish this difference").
SchedulerParams condor_params(double negotiation_interval_s = 240.0);

/// The cluster batch system model.
class ClusterScheduler {
 public:
  using JobBody = std::function<void(JobContext&)>;
  using CompletionHook = std::function<void(const JobRecord&)>;

  ClusterScheduler(Simulator& sim, ClusterSpec cluster,
                   SchedulerParams params);

  /// Queue a job; `body` runs on a node when dispatched. `cores` > 1
  /// reserves that many cores on a *single* node for the job's duration
  /// (the paper's §7 "massive ensembles of small (2-3 task) MPI jobs").
  JobId submit(JobBody body, std::size_t cores = 1);

  /// Queue a whole array at once (one submit overhead for the array).
  std::vector<JobId> submit_array(std::vector<JobBody> bodies);

  /// Cancel a queued job, or kill a running one (core freed immediately).
  void cancel(JobId id);

  /// Hook fired at every job completion/failure/cancellation.
  void set_completion_hook(CompletionHook hook);

  const JobRecord& record(JobId id) const;
  const std::vector<JobRecord>& records() const { return records_; }

  /// Shared NFS/file-server resource of this cluster.
  BandwidthResource& nfs() { return *nfs_; }

  std::size_t queued_jobs() const { return queue_.size(); }
  std::size_t running_jobs() const { return running_; }
  std::size_t free_cores() const;

  const ClusterSpec& cluster() const { return cluster_; }
  Simulator& sim() { return sim_; }
  const SchedulerParams& params() const { return params_; }

  /// Attach a telemetry sink (nullable). The scheduler then records
  /// `sched.*` counters (jobs submitted/dispatched/done/failed/cancelled,
  /// cpu/io seconds), histograms (`sched.queue_wait_s`,
  /// `sched.job_utilisation`, `sched.negotiation_wait_s` under Condor
  /// dispatch) and a `sched.queue_depth` gauge + event stream, all
  /// stamped with simulated time.
  void set_telemetry(telemetry::Sink* sink) { telem_ = sink; }
  telemetry::Sink* telemetry() const { return telem_; }

  /// Core-seconds occupied by this scheduler's jobs so far (integral of
  /// held cores over simulated time, up to now). Divide by elapsed time ×
  /// schedulable_cores() for fleet utilisation.
  double busy_core_seconds() const;
  /// Cores not permanently reserved by other users.
  std::size_t schedulable_cores() const { return schedulable_cores_; }

  /// Aggregate utilisation statistics per job kind are derived by the
  /// caller from records(); the scheduler only keeps raw lifecycles.

 private:
  friend class JobContext;

  void try_dispatch();            // SGE path (event driven)
  void negotiation_cycle();       // Condor path
  void dispatch_at(std::size_t queue_pos, std::size_t node_index);
  /// Queue position + node able to host it (respecting FIFO/backfill);
  /// nullopt when nothing fits.
  std::optional<std::pair<std::size_t, std::size_t>> find_dispatchable()
      const;
  std::optional<std::size_t> find_node_for(std::size_t cores) const;
  void release_cores(std::size_t node_index, std::size_t cores);
  void job_done(JobId id, JobStatus status);
  void advance_occupancy();
  void note_queue_depth();
  /// Node-outage process (faults.outage.mtbf_s > 0): a fleet-level Poisson
  /// clock takes random nodes down for faults.outage.duration_s, evicting
  /// their running jobs. Pauses while the scheduler is idle so the
  /// simulator's event queue can drain.
  void maybe_schedule_outage();
  void outage_event();
  void take_node_down(std::size_t node_index);

  Simulator& sim_;
  ClusterSpec cluster_;
  SchedulerParams params_;
  std::unique_ptr<BandwidthResource> nfs_;
  std::vector<std::size_t> busy_cores_;  // per node
  struct Pending {
    JobId id;
    JobBody body;
    std::size_t cores;
  };
  std::deque<Pending> queue_;
  std::vector<JobRecord> records_;
  std::vector<std::shared_ptr<JobContext>> contexts_;  // by id, running only
  std::size_t running_ = 0;
  CompletionHook hook_;
  Rng outage_rng_;
  std::vector<bool> node_down_;
  bool outage_scheduled_ = false;
  bool negotiation_scheduled_ = false;
  SimTime submit_ready_at_ = 0.0;  // master busy until (submit overheads)
  telemetry::Sink* telem_ = nullptr;
  std::size_t schedulable_cores_ = 0;
  std::size_t held_cores_ = 0;           // cores held by our jobs, now
  double busy_core_seconds_ = 0.0;       // ∫ held_cores dt
  SimTime occupancy_since_ = 0.0;
};

}  // namespace essex::mtc
