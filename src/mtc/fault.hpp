// ESSEX: the fault model shared by every execution backend (§4 point 3).
//
// The paper's MTC redesign exists because real platforms misbehave —
// Condor harvest delays, NFS contention, TeraGrid host heterogeneity
// (Table 1), EC2 instance loss. This header defines the one vocabulary
// both Fig.-4 drivers speak: a typed TaskOutcome per attempt, a
// FaultPolicy (retry/backoff/timeout/speculation/degradation floor), a
// FaultInjection model for the DES, and the FaultTolerantExecutor that
// implements recovery once against the abstract ExecutionBackend.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/rng.hpp"

namespace essex::telemetry {
class Sink;
}

namespace essex::mtc {

/// Backend-assigned attempt handle. 0 is reserved for "not yet known".
using TaskId = std::uint64_t;

/// Where an attempt currently is in its lifecycle.
enum class TaskState {
  kQueued,
  kRunning,
  kFinished,
};

/// Terminal outcome of one task attempt — the single type that replaces
/// the DES JobStatus / thread-pool-exception split for fault handling.
enum class TaskOutcome {
  kDone,
  kFailed,     ///< the attempt itself errored (crash, exception)
  kTimedOut,   ///< killed by the per-task timeout
  kCancelled,  ///< cancelled by the caller (convergence, lost race)
  kEvicted,    ///< the host went away (node outage, glide-in lease end)
};

std::string to_string(TaskState s);
std::string to_string(TaskOutcome o);

/// One attempt's lifecycle snapshot, as reported/polled from a backend.
struct TaskReport {
  TaskId task = 0;
  std::size_t member = 0;   ///< ensemble member this attempt computes
  std::size_t attempt = 0;  ///< 0 = first attempt, >0 = retry/speculative
  TaskState state = TaskState::kQueued;
  TaskOutcome outcome = TaskOutcome::kDone;  ///< valid once kFinished
  double submitted = 0.0;
  double started = 0.0;   ///< 0 while still queued
  double finished = 0.0;  ///< 0 while not terminal
  /// Relative CPU speed of the host the attempt landed on (1.0 when the
  /// backend has no heterogeneity model, e.g. in-process threads).
  double node_speed = 1.0;

  double duration() const { return finished - started; }
};

/// Recovery policy, applied uniformly by FaultTolerantExecutor.
struct FaultPolicy {
  /// Re-submissions allowed per member beyond the first attempt.
  std::size_t max_retries = 3;
  /// Exponential backoff before a retry: base × factor^(failures-1),
  /// jittered ±`backoff_jitter` fraction from the member's own RNG
  /// stream so synchronized failures do not resubmit in lock-step.
  double backoff_base_s = 5.0;
  double backoff_factor = 2.0;
  double backoff_jitter = 0.5;
  /// Per-task timeout as a multiple of the expected attempt runtime
  /// (the calibrated EsseJobShape runtime in the DES); 0 disables.
  double timeout_multiple = 4.0;
  /// Straggler detection (Table 1 heterogeneity): a running attempt is
  /// speculatively re-executed once its elapsed time exceeds
  /// `straggler_multiple` × the p95 of completed attempt durations.
  bool speculate = true;
  double straggler_multiple = 2.0;
  std::size_t straggler_min_samples = 16;
  std::size_t max_speculative = 64;  ///< concurrent backup copies cap
  /// How often the straggler scan runs; 0 = expected runtime / 4.
  double straggler_check_interval_s = 0.0;
  /// Graceful-degradation floor N′: the analysis may proceed with fewer
  /// members than planned, but never below this many survivors.
  std::size_t min_members = 2;
  std::uint64_t seed = 0x5EEDFA01ULL;
};

/// Failure *injection* knobs (what the DES does to jobs), as a
/// structured policy: the two failure processes the backends model are
/// named sub-structs instead of loose doubles, so a call site reads
/// `inject.segment.probability` and cannot transpose unrelated knobs.
struct FaultInjection {
  /// Mid-run compute-segment deaths (§4 point 3): crashes, OOM kills,
  /// wedged NFS writes.
  struct SegmentFailures {
    /// Probability one attempt dies mid-run. Drawn from a per-job
    /// splittable RNG stream keyed by the job id, so enabling injection
    /// never perturbs any other stochastic draw in the run.
    double probability = 0.0;
    /// Fraction of the segment's runtime at which the failure strikes.
    double fraction = 0.5;
  };
  /// Whole-node outages: glide-in lease loss, EC2 instance loss. Each
  /// outage takes one schedulable node down for `duration_s`; running
  /// jobs on it are evicted.
  struct NodeOutages {
    /// Fleet-wide mean time between outages (0 = off).
    double mtbf_s = 0.0;
    double duration_s = 600.0;
  };
  SegmentFailures segment;
  NodeOutages outage;
  std::uint64_t seed = 1234;
};

/// Everything the fault layer counted, for metrics structs and benches.
struct FaultStats {
  std::size_t failed_attempts = 0;  ///< attempts that ended kFailed
  std::size_t evictions = 0;        ///< attempts that ended kEvicted
  std::size_t timeouts = 0;         ///< attempts killed by the timeout
  std::size_t retries = 0;          ///< re-submissions issued
  std::size_t speculative_launched = 0;
  std::size_t speculative_won = 0;  ///< backup finished before original
  // Member-level final outcomes. Every dispatched member resolves to
  // exactly one of these, so for any run
  //   members_done + members_cancelled + members_lost == dispatched —
  // the conservation invariant the testkit scenario oracle checks.
  std::size_t members_done = 0;       ///< resolved kDone
  std::size_t members_cancelled = 0;  ///< resolved kCancelled
  std::size_t members_lost = 0;       ///< retries exhausted, member gone
};

class ExecutionBackend;

/// The fault-tolerance layer, built once against ExecutionBackend: retry
/// with jittered exponential backoff, per-task timeouts, p95-based
/// straggler speculation, and per-member final-outcome resolution. Safe
/// to drive from the single-threaded DES and from thread-pool workers.
class FaultTolerantExecutor {
 public:
  /// Fired exactly once per member with its final outcome: kDone, the
  /// last failure outcome when retries are exhausted, or kCancelled.
  using MemberHook = std::function<void(std::size_t member, TaskOutcome)>;
  /// Fired after every processed attempt report (drain bookkeeping).
  using ReportObserver = std::function<void(const TaskReport&)>;

  FaultTolerantExecutor(ExecutionBackend& backend, FaultPolicy policy,
                        telemetry::Sink* sink = nullptr);

  void set_member_hook(MemberHook hook);
  void set_report_observer(ReportObserver observer);

  /// Launch (the first attempt of) ensemble member `member`.
  void run_member(std::size_t member);

  /// Resolve `member` as kCancelled and cancel its live attempts.
  void cancel_member(std::size_t member);

  /// Cancel everything and refuse any further launches (teardown).
  void cancel_all();

  /// Stop issuing retries and speculative copies, let live attempts run
  /// out (post-convergence draining under kSpareNearFinish).
  void enter_drain_mode();

  /// No live attempts and no retry pending.
  bool idle() const;

  /// Unresolved members with a live attempt: (member, polled report of
  /// its primary attempt). Used by cancel policies (spare-near-finish).
  std::vector<std::pair<std::size_t, TaskReport>> live_members() const;

  FaultStats stats() const;
  std::size_t members_resolved() const;

  /// Scan running attempts against the p95 straggler threshold and
  /// launch speculative copies. Normally self-armed via backend timers;
  /// exposed for deterministic tests.
  void check_stragglers();

 private:
  struct Attempt {
    TaskId id = 0;  ///< 0 until the backend submit returns
    std::size_t number = 0;
    bool speculative = false;
    bool timed_out = false;  ///< timeout fired; rewrite kCancelled
  };
  struct MemberState {
    std::size_t attempts_used = 0;
    std::size_t failed_attempts = 0;
    std::vector<Attempt> live;
    bool resolved = false;
    bool retry_pending = false;
    Rng rng;  ///< per-member jitter stream (split from policy seed)

    MemberState() : rng(0) {}
    explicit MemberState(Rng r) : rng(r) {}
  };

  void on_report(const TaskReport& report);
  void on_timeout(std::size_t member, std::size_t attempt_number);
  void on_retry_timer(std::size_t member);
  void launch(std::size_t member, bool speculative);
  void arm_straggler_timer();
  double expected_runtime_locked() const;
  double straggler_interval_locked() const;
  void resolve_locked(MemberState& st, std::size_t member,
                      TaskOutcome outcome);

  ExecutionBackend& backend_;
  FaultPolicy policy_;
  telemetry::Sink* sink_;
  MemberHook member_hook_;
  ReportObserver observer_;

  mutable std::mutex mu_;
  std::unordered_map<std::size_t, MemberState> members_;
  std::vector<double> durations_;  ///< completed attempt durations
  FaultStats stats_;
  std::size_t live_attempts_ = 0;
  std::size_t retries_pending_ = 0;
  std::size_t speculative_live_ = 0;
  std::size_t members_resolved_ = 0;
  bool draining_ = false;
  bool shutdown_ = false;
  bool straggler_timer_armed_ = false;
};

}  // namespace essex::mtc
