#include "mtc/job.hpp"

namespace essex::mtc {

std::string to_string(JobStatus s) {
  switch (s) {
    case JobStatus::kQueued: return "queued";
    case JobStatus::kRunning: return "running";
    case JobStatus::kDone: return "done";
    case JobStatus::kFailed: return "failed";
    case JobStatus::kCancelled: return "cancelled";
    case JobStatus::kEvicted: return "evicted";
  }
  return "?";
}

std::string to_string(InputStaging s) {
  switch (s) {
    case InputStaging::kNfsDirect: return "nfs-direct";
    case InputStaging::kPrestageLocal: return "prestage-local";
    case InputStaging::kOpenDapRemote: return "opendap-remote";
  }
  return "?";
}

std::string to_string(OutputTransfer s) {
  switch (s) {
    case OutputTransfer::kPushImmediate: return "push-immediate";
    case OutputTransfer::kPullPaced: return "pull-paced";
    case OutputTransfer::kTwoStagePut: return "two-stage-put";
  }
  return "?";
}

}  // namespace essex::mtc
