#include "mtc/sim.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"

namespace essex::mtc {

std::uint64_t Simulator::at(SimTime t, Callback fn) {
  ESSEX_REQUIRE(t >= now_ - 1e-9, "cannot schedule an event in the past");
  ESSEX_REQUIRE(fn != nullptr, "cannot schedule an empty callback");
  const std::uint64_t seq = next_seq_++;
  cancelled_.push_back(false);
  events_.push(Event{std::max(t, now_), seq, std::move(fn)});
  return seq;
}

std::uint64_t Simulator::after(SimTime delay, Callback fn) {
  ESSEX_REQUIRE(delay >= 0.0, "delay must be non-negative");
  return at(now_ + delay, std::move(fn));
}

void Simulator::cancel(std::uint64_t id) {
  if (id < cancelled_.size()) cancelled_[id] = true;
}

bool Simulator::step() {
  while (!events_.empty()) {
    Event ev = events_.top();
    events_.pop();
    if (cancelled_[ev.seq]) continue;
    now_ = ev.t;
    ev.fn();
    return true;
  }
  return false;
}

std::size_t Simulator::run_until(SimTime t_end) {
  std::size_t fired = 0;
  while (!events_.empty()) {
    // Peek past cancelled events without firing them.
    const Event& top = events_.top();
    if (cancelled_[top.seq]) {
      events_.pop();
      continue;
    }
    if (top.t > t_end) break;
    step();
    ++fired;
  }
  now_ = std::max(now_, t_end);
  return fired;
}

std::size_t Simulator::run() {
  std::size_t fired = 0;
  while (step()) ++fired;
  return fired;
}

BandwidthResource::BandwidthResource(Simulator& sim,
                                     double capacity_bytes_per_s,
                                     std::string name)
    : sim_(sim), capacity_(capacity_bytes_per_s), name_(std::move(name)) {
  ESSEX_REQUIRE(capacity_ > 0, "bandwidth capacity must be positive");
}

void BandwidthResource::advance_progress() {
  const SimTime t = sim_.now();
  const double dt = t - last_update_;
  if (dt > 0 && !flows_.empty()) {
    const double per_flow =
        capacity_ * dt / static_cast<double>(flows_.size());
    for (auto& [id, flow] : flows_) {
      const double moved = std::min(per_flow, flow.remaining);
      flow.remaining -= moved;
      bytes_done_ += moved;
    }
    busy_seconds_ += dt;
  }
  last_update_ = t;
}

void BandwidthResource::reschedule() {
  if (has_pending_event_) {
    sim_.cancel(pending_event_);
    has_pending_event_ = false;
  }
  if (flows_.empty()) return;
  // Next completion: smallest remaining under equal shares.
  double min_remaining = std::numeric_limits<double>::infinity();
  for (const auto& [id, flow] : flows_)
    min_remaining = std::min(min_remaining, flow.remaining);
  const double share = capacity_ / static_cast<double>(flows_.size());
  const double dt = std::max(min_remaining / share, 0.0);
  pending_event_ = sim_.after(dt, [this] {
    has_pending_event_ = false;
    advance_progress();
    // Collect every flow that finished, firing callbacks only after
    // mutating state so re-entrant start_transfer calls are safe. The
    // completion threshold is *relative to capacity* (one nanosecond of
    // full-rate transfer): float residue after an "exact" completion can
    // exceed any absolute byte threshold, and the matching reschedule dt
    // can underflow the double ulp of the current sim time, freezing the
    // clock.
    const double eps = capacity_ * 1e-9;
    std::vector<Simulator::Callback> done;
    for (auto it = flows_.begin(); it != flows_.end();) {
      if (it->second.remaining <= eps) {
        done.push_back(std::move(it->second.on_done));
        it = flows_.erase(it);
      } else {
        ++it;
      }
    }
    reschedule();
    for (auto& cb : done) cb();
  });
  has_pending_event_ = true;
}

std::uint64_t BandwidthResource::start_transfer(double bytes,
                                                Simulator::Callback on_done) {
  ESSEX_REQUIRE(bytes >= 0, "transfer size must be non-negative");
  ESSEX_REQUIRE(on_done != nullptr, "transfer needs a completion callback");
  advance_progress();
  const std::uint64_t id = next_id_++;
  flows_.emplace(id, Flow{std::max(bytes, 1e-9), std::move(on_done)});
  reschedule();
  return id;
}

double BandwidthResource::bytes_moved() const { return bytes_done_; }

double BandwidthResource::busy_seconds() const { return busy_seconds_; }

}  // namespace essex::mtc
