#include "mtc/output_transfer.hpp"

#include <algorithm>
#include <deque>
#include <memory>

#include "common/error.hpp"
#include "common/telemetry.hpp"
#include "mtc/sim.hpp"

namespace essex::mtc {

namespace {

/// Shared state of one replay.
struct Replay {
  Simulator sim;
  std::unique_ptr<BandwidthResource> wan;
  std::unique_ptr<BandwidthResource> site_fs;
  std::size_t wan_flows = 0;
  std::size_t peak_wan_flows = 0;
  std::vector<double> home_at;  // per member
  telemetry::Sink* sink = nullptr;

  void wan_transfer(double bytes, std::size_t member,
                    Simulator::Callback done) {
    ++wan_flows;
    peak_wan_flows = std::max(peak_wan_flows, wan_flows);
    if (sink)
      sink->event("output.wan_flows", sim.now(),
                  static_cast<double>(wan_flows));
    wan->start_transfer(bytes, [this, member, done = std::move(done)] {
      --wan_flows;
      if (sink)
        sink->event("output.wan_flows", sim.now(),
                    static_cast<double>(wan_flows));
      if (member != static_cast<std::size_t>(-1))
        home_at[member] = sim.now();
      if (done) done();
    });
  }
};

/// An agent channel that drains a ready-queue over one persistent
/// connection (pull model and the second stage of two-stage put).
struct AgentChannel {
  Replay& replay;
  const OutputReturnConfig& cfg;
  std::deque<std::size_t>& ready;
  bool busy = false;
  bool connected = false;

  void pump() {
    if (busy || ready.empty()) return;
    busy = true;
    const std::size_t member = ready.front();
    ready.pop_front();
    auto start_transfer = [this, member] {
      replay.wan_transfer(cfg.file_bytes, member, [this] {
        busy = false;
        pump();
      });
    };
    if (!connected) {
      connected = true;  // setup paid once per channel
      replay.sim.after(cfg.connection_setup_s, start_transfer);
    } else {
      start_transfer();
    }
  }
};

}  // namespace

OutputReturnMetrics simulate_output_return(
    const std::vector<double>& completion_times_s,
    const OutputReturnConfig& config) {
  ESSEX_REQUIRE(!completion_times_s.empty(), "need at least one member");
  ESSEX_REQUIRE(config.gateway_bps > 0 && config.site_fs_bps > 0,
                "bandwidths must be positive");
  ESSEX_REQUIRE(config.agent_streams >= 1, "need at least one stream");
  const std::size_t n = completion_times_s.size();

  Replay rp;
  rp.wan = std::make_unique<BandwidthResource>(rp.sim, config.gateway_bps,
                                               "wan");
  rp.site_fs = std::make_unique<BandwidthResource>(
      rp.sim, config.site_fs_bps, "site-fs");
  rp.home_at.assign(n, 0.0);
  rp.sink = config.sink;

  std::deque<std::size_t> ready;
  std::vector<std::unique_ptr<AgentChannel>> channels;
  const bool agent_based =
      config.strategy != OutputTransfer::kPushImmediate;
  if (agent_based) {
    for (std::size_t c = 0; c < config.agent_streams; ++c) {
      channels.push_back(std::make_unique<AgentChannel>(
          AgentChannel{rp, config, ready, false, false}));
    }
  }
  auto pump_agents = [&] {
    for (auto& ch : channels) ch->pump();
  };

  for (std::size_t i = 0; i < n; ++i) {
    const double t = completion_times_s[i];
    ESSEX_REQUIRE(t >= 0, "completion times must be non-negative");
    switch (config.strategy) {
      case OutputTransfer::kPushImmediate:
        // Every node opens its own connection the moment it finishes.
        rp.sim.at(t, [&rp, &config, i] {
          rp.sim.after(config.connection_setup_s, [&rp, &config, i] {
            rp.wan_transfer(config.file_bytes, i, nullptr);
          });
        });
        break;
      case OutputTransfer::kPullPaced:
        // The file becomes visible to the home pull-agent at completion.
        rp.sim.at(t, [&ready, &pump_agents, i] {
          ready.push_back(i);
          pump_agents();
        });
        break;
      case OutputTransfer::kTwoStagePut:
        // Node writes to the site-shared filesystem first; the site
        // agent forwards from there.
        rp.sim.at(t, [&rp, &config, &ready, &pump_agents, i] {
          rp.site_fs->start_transfer(
              config.file_bytes, [&ready, &pump_agents, i] {
                ready.push_back(i);
                pump_agents();
              });
        });
        break;
    }
  }

  rp.sim.run();

  OutputReturnMetrics m;
  double latency_sum = 0;
  for (std::size_t i = 0; i < n; ++i) {
    ESSEX_ASSERT(rp.home_at[i] > 0, "member output never reached home");
    m.all_home_s = std::max(m.all_home_s, rp.home_at[i]);
    const double lat = rp.home_at[i] - completion_times_s[i];
    latency_sum += lat;
    m.max_latency_s = std::max(m.max_latency_s, lat);
  }
  m.mean_latency_s = latency_sum / static_cast<double>(n);
  m.peak_concurrent_wan = rp.peak_wan_flows;
  m.gateway_busy_s = rp.wan->busy_seconds();
  if (config.sink) {
    telemetry::Sink& sink = *config.sink;
    for (std::size_t i = 0; i < n; ++i)
      sink.observe("output.latency_s", rp.home_at[i] - completion_times_s[i]);
    sink.count("output.files", static_cast<double>(n));
    sink.gauge_set("output.all_home_s", m.all_home_s);
    sink.gauge_set("output.peak_concurrent_wan",
                   static_cast<double>(m.peak_concurrent_wan));
    sink.gauge_set("output.gateway_busy_s", m.gateway_busy_s);
  }
  return m;
}

}  // namespace essex::mtc
