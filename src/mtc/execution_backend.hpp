// ESSEX: the unified execution API both Fig.-4 drivers submit through.
//
// The DES workflow driver (esse_workflow_sim) and the real thread-pool
// runner (parallel_runner) used to own divergent execution paths — the
// former over ClusterScheduler's JobStatus, the latter over raw
// thread-pool exceptions. ExecutionBackend abstracts the four things the
// fault layer needs — submit / cancel / poll and a terminal TaskReport
// stream — plus a clock and one-shot timers, so FaultTolerantExecutor is
// written exactly once and both drivers inherit retry, speculation and
// graceful degradation.
//
//  * SimExecutionBackend wraps a ClusterScheduler: tasks are simulated
//    member jobs, time is Simulator time, eviction comes from the node
//    outage model.
//  * ThreadExecutionBackend wraps the in-process ThreadPool: tasks are
//    real member closures, exceptions become TaskOutcome::kFailed, time
//    is the wall clock and timers run on a dedicated timer thread.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/thread_pool.hpp"
#include "mtc/fault.hpp"
#include "mtc/job.hpp"
#include "mtc/scheduler.hpp"

namespace essex::mtc {

/// Map a terminal JobStatus onto the unified TaskOutcome.
TaskOutcome to_outcome(JobStatus status);

/// Abstract submit/cancel/poll surface shared by the DES scheduler and
/// the real thread pool.
class ExecutionBackend {
 public:
  using ReportHook = std::function<void(const TaskReport&)>;

  virtual ~ExecutionBackend() = default;

  /// Launch attempt `attempt` of ensemble member `member`. Returns the
  /// attempt's TaskId (> 0). The report hook fires exactly once per
  /// submitted attempt, at its terminal transition.
  virtual TaskId submit(std::size_t member, std::size_t attempt) = 0;

  /// Cancel a queued or running attempt. Exact in the DES; cooperative
  /// (flag-based) for running real threads. No-op once terminal.
  virtual void cancel(TaskId id) = 0;

  /// Snapshot of an attempt's current lifecycle state.
  virtual TaskReport poll(TaskId id) const = 0;

  /// Backend clock: simulated seconds (DES) or wall seconds (threads).
  virtual double now() const = 0;

  /// One-shot timer on the backend's clock (backoff, timeouts,
  /// straggler scans). Timers may be dropped at backend teardown.
  virtual void after(double delay_s, std::function<void()> fn) = 0;

  /// Expected single-attempt runtime; 0 = unknown (the fault layer then
  /// estimates it from completed attempts).
  virtual double expected_runtime_s() const { return 0.0; }

  /// Install the terminal-report hook (single slot, not owned).
  virtual void set_report_hook(ReportHook hook) = 0;
};

/// ExecutionBackend over the DES ClusterScheduler. Claims the
/// scheduler's completion hook for the backend's lifetime; drivers
/// observe completions through the fault layer instead.
class SimExecutionBackend final : public ExecutionBackend {
 public:
  /// Builds the simulated job body for (member, attempt).
  using BodyFactory =
      std::function<ClusterScheduler::JobBody(std::size_t member,
                                              std::size_t attempt)>;

  SimExecutionBackend(ClusterScheduler& sched, BodyFactory factory,
                      double expected_runtime_s = 0.0);
  ~SimExecutionBackend() override;

  TaskId submit(std::size_t member, std::size_t attempt) override;
  void cancel(TaskId id) override;
  TaskReport poll(TaskId id) const override;
  double now() const override;
  void after(double delay_s, std::function<void()> fn) override;
  double expected_runtime_s() const override { return expected_runtime_; }
  void set_report_hook(ReportHook hook) override { hook_ = std::move(hook); }

 private:
  struct TaskInfo {
    std::size_t member = 0;
    std::size_t attempt = 0;
  };
  TaskReport report_for(JobId job, const TaskInfo& info) const;

  ClusterScheduler& sched_;
  BodyFactory factory_;
  double expected_runtime_ = 0.0;
  ReportHook hook_;
  std::unordered_map<JobId, TaskInfo> tasks_;
};

/// ExecutionBackend over the in-process ThreadPool: member closures,
/// exception capture, cooperative cancellation and a timer thread.
class ThreadExecutionBackend final : public ExecutionBackend {
 public:
  /// Runs (member, attempt) to completion; throwing reports kFailed.
  /// `cancelled` turns true when the attempt is cancelled mid-run —
  /// long-running bodies may poll it and bail out early.
  using TaskFn = std::function<void(std::size_t member, std::size_t attempt,
                                    const std::atomic<bool>& cancelled)>;

  ThreadExecutionBackend(ThreadPool& pool, TaskFn fn);
  ~ThreadExecutionBackend() override;

  TaskId submit(std::size_t member, std::size_t attempt) override;
  void cancel(TaskId id) override;
  TaskReport poll(TaskId id) const override;
  double now() const override;
  void after(double delay_s, std::function<void()> fn) override;
  void set_report_hook(ReportHook hook) override;

  /// Block until every attempt submitted through this backend has fully
  /// retired from the pool — ran to completion, or was skipped by a
  /// worker after cancellation. Unlike ThreadPool::wait_idle() this waits
  /// only on *this backend's* tasks, so concurrent forecasts sharing one
  /// persistent pool (ForecastService) tear down independently. After it
  /// returns, no pool worker can re-enter this backend.
  void drain_tasks();

  /// Join the timer thread and drop pending timers. Call after
  /// drain_tasks() and before destroying whatever the report hook points
  /// at.
  void shutdown_timers();

 private:
  struct TaskRec {
    std::size_t member = 0;
    std::size_t attempt = 0;
    TaskState state = TaskState::kQueued;
    TaskOutcome outcome = TaskOutcome::kDone;
    double submitted = 0.0;
    double started = 0.0;
    double finished = 0.0;
    bool cancel_requested = false;
    std::shared_ptr<std::atomic<bool>> token;
  };

  bool begin_task(TaskId id);
  void finish_task(TaskId id, bool threw);
  TaskReport poll_locked(TaskId id) const;
  void timer_loop();

  ThreadPool& pool_;
  TaskFn fn_;
  ReportHook hook_;
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::unordered_map<TaskId, TaskRec> tasks_;
  TaskId next_id_ = 1;
  std::vector<std::future<void>> futures_;  ///< one per submitted attempt

  // Timer thread state.
  std::mutex timer_mu_;
  std::condition_variable timer_cv_;
  std::multimap<double, std::function<void()>> timers_;  // by deadline
  bool timer_shutdown_ = false;
  std::thread timer_thread_;
};

}  // namespace essex::mtc
