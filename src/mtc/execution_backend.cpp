#include "mtc/execution_backend.hpp"

#include <chrono>

#include "common/error.hpp"

namespace essex::mtc {

TaskOutcome to_outcome(JobStatus status) {
  switch (status) {
    case JobStatus::kDone: return TaskOutcome::kDone;
    case JobStatus::kFailed: return TaskOutcome::kFailed;
    case JobStatus::kCancelled: return TaskOutcome::kCancelled;
    case JobStatus::kEvicted: return TaskOutcome::kEvicted;
    case JobStatus::kQueued:
    case JobStatus::kRunning: break;
  }
  ESSEX_REQUIRE(false, "to_outcome on a non-terminal job status");
  return TaskOutcome::kFailed;
}

// ---- SimExecutionBackend ------------------------------------------------

SimExecutionBackend::SimExecutionBackend(ClusterScheduler& sched,
                                         BodyFactory factory,
                                         double expected_runtime_s)
    : sched_(sched),
      factory_(std::move(factory)),
      expected_runtime_(expected_runtime_s) {
  ESSEX_REQUIRE(factory_ != nullptr, "backend needs a body factory");
  sched_.set_completion_hook([this](const JobRecord& rec) {
    auto it = tasks_.find(rec.id);
    if (it == tasks_.end()) return;  // not one of ours (master-side job)
    if (hook_) hook_(report_for(rec.id, it->second));
  });
}

SimExecutionBackend::~SimExecutionBackend() {
  sched_.set_completion_hook(nullptr);
}

TaskId SimExecutionBackend::submit(std::size_t member, std::size_t attempt) {
  // The DES is single-threaded and submit() only schedules events, so
  // registering the job after submit cannot miss its completion.
  const JobId job = sched_.submit(factory_(member, attempt));
  tasks_[job] = TaskInfo{member, attempt};
  return job + 1;  // TaskId 0 is reserved for "not yet known"
}

void SimExecutionBackend::cancel(TaskId id) {
  ESSEX_REQUIRE(id != 0, "cancel on a null task id");
  sched_.cancel(id - 1);  // no-op once terminal
}

TaskReport SimExecutionBackend::poll(TaskId id) const {
  ESSEX_REQUIRE(id != 0, "poll on a null task id");
  const JobId job = id - 1;
  auto it = tasks_.find(job);
  ESSEX_REQUIRE(it != tasks_.end(), "poll on an unknown task");
  return report_for(job, it->second);
}

TaskReport SimExecutionBackend::report_for(JobId job,
                                           const TaskInfo& info) const {
  const JobRecord& rec = sched_.record(job);
  TaskReport r;
  r.task = job + 1;
  r.member = info.member;
  r.attempt = info.attempt;
  r.submitted = rec.submitted;
  r.started = rec.started;
  switch (rec.status) {
    case JobStatus::kQueued:
      r.state = TaskState::kQueued;
      break;
    case JobStatus::kRunning:
      r.state = TaskState::kRunning;
      break;
    default:
      r.state = TaskState::kFinished;
      r.outcome = to_outcome(rec.status);
      r.finished = rec.finished;
      break;
  }
  if (rec.status != JobStatus::kQueued) {
    r.node_speed = sched_.cluster().nodes[rec.node_index].cpu_speed;
  }
  return r;
}

double SimExecutionBackend::now() const { return sched_.sim().now(); }

void SimExecutionBackend::after(double delay_s, std::function<void()> fn) {
  sched_.sim().after(delay_s, std::move(fn));
}

// ---- ThreadExecutionBackend ---------------------------------------------

ThreadExecutionBackend::ThreadExecutionBackend(ThreadPool& pool, TaskFn fn)
    : pool_(pool), fn_(std::move(fn)),
      epoch_(std::chrono::steady_clock::now()) {
  ESSEX_REQUIRE(fn_ != nullptr, "backend needs a task function");
  timer_thread_ = std::thread([this] { timer_loop(); });
}

ThreadExecutionBackend::~ThreadExecutionBackend() { shutdown_timers(); }

double ThreadExecutionBackend::now() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

void ThreadExecutionBackend::set_report_hook(ReportHook hook) {
  std::lock_guard<std::mutex> lk(mu_);
  hook_ = std::move(hook);
}

TaskId ThreadExecutionBackend::submit(std::size_t member,
                                      std::size_t attempt) {
  auto token = std::make_shared<std::atomic<bool>>(false);
  TaskId id = 0;
  {
    std::lock_guard<std::mutex> lk(mu_);
    id = next_id_++;
    TaskRec rec;
    rec.member = member;
    rec.attempt = attempt;
    rec.submitted = now();
    rec.token = token;
    tasks_.emplace(id, std::move(rec));
  }
  auto fut = pool_.submit(
      [this, id, member, attempt](const std::atomic<bool>& cancelled) {
        if (!begin_task(id)) return;  // cancelled first; report already out
        bool threw = false;
        try {
          fn_(member, attempt, cancelled);
        } catch (...) {
          threw = true;
        }
        finish_task(id, threw);
      },
      token);
  {
    std::lock_guard<std::mutex> lk(mu_);
    futures_.push_back(std::move(fut));
  }
  return id;
}

void ThreadExecutionBackend::drain_tasks() {
  // Submits may race the first swaps (a retry timer landing late), so
  // keep draining until a pass finds nothing new.
  for (;;) {
    std::vector<std::future<void>> futs;
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (futures_.empty()) return;
      futs.swap(futures_);
    }
    // wait() never throws; a skipped (cancelled-before-start) task parks
    // TaskCancelled in the future, which we deliberately never get().
    for (auto& f : futs) f.wait();
  }
}

bool ThreadExecutionBackend::begin_task(TaskId id) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = tasks_.find(id);
  ESSEX_ASSERT(it != tasks_.end(), "begin_task on an unknown task");
  if (it->second.state != TaskState::kQueued) return false;
  it->second.state = TaskState::kRunning;
  it->second.started = now();
  return true;
}

void ThreadExecutionBackend::finish_task(TaskId id, bool threw) {
  TaskReport report;
  ReportHook hook;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = tasks_.find(id);
    ESSEX_ASSERT(it != tasks_.end(), "finish_task on an unknown task");
    TaskRec& rec = it->second;
    if (rec.state == TaskState::kFinished) return;
    rec.state = TaskState::kFinished;
    rec.finished = now();
    rec.outcome = rec.cancel_requested
                      ? TaskOutcome::kCancelled
                      : (threw ? TaskOutcome::kFailed : TaskOutcome::kDone);
    report = poll_locked(id);
    hook = hook_;
  }
  if (hook) hook(report);
}

void ThreadExecutionBackend::cancel(TaskId id) {
  TaskReport report;
  ReportHook hook;
  bool emit = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = tasks_.find(id);
    if (it == tasks_.end()) return;
    TaskRec& rec = it->second;
    if (rec.state == TaskState::kFinished || rec.cancel_requested) return;
    rec.cancel_requested = true;
    rec.token->store(true, std::memory_order_relaxed);
    if (rec.state == TaskState::kQueued) {
      // The worker will skip the task (or begin_task will refuse it);
      // the terminal report is ours to emit.
      rec.state = TaskState::kFinished;
      rec.outcome = TaskOutcome::kCancelled;
      rec.finished = now();
      report = poll_locked(id);
      hook = hook_;
      emit = true;
    }
    // Running: the worker observes the token and finish_task reports
    // kCancelled when it returns.
  }
  if (emit && hook) hook(report);
}

TaskReport ThreadExecutionBackend::poll(TaskId id) const {
  std::lock_guard<std::mutex> lk(mu_);
  return poll_locked(id);
}

TaskReport ThreadExecutionBackend::poll_locked(TaskId id) const {
  auto it = tasks_.find(id);
  ESSEX_REQUIRE(it != tasks_.end(), "poll on an unknown task");
  const TaskRec& rec = it->second;
  TaskReport r;
  r.task = id;
  r.member = rec.member;
  r.attempt = rec.attempt;
  r.state = rec.state;
  r.outcome = rec.outcome;
  r.submitted = rec.submitted;
  r.started = rec.started;
  r.finished = rec.finished;
  return r;
}

void ThreadExecutionBackend::after(double delay_s, std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lk(timer_mu_);
    if (timer_shutdown_) return;
    timers_.emplace(now() + delay_s, std::move(fn));
  }
  timer_cv_.notify_one();
}

void ThreadExecutionBackend::timer_loop() {
  std::unique_lock<std::mutex> lk(timer_mu_);
  while (!timer_shutdown_) {
    if (timers_.empty()) {
      timer_cv_.wait(lk, [this] {
        return timer_shutdown_ || !timers_.empty();
      });
      continue;
    }
    const double deadline = timers_.begin()->first;
    const auto when =
        epoch_ + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                     std::chrono::duration<double>(deadline));
    if (timer_cv_.wait_until(lk, when, [this, deadline] {
          return timer_shutdown_ ||
                 (!timers_.empty() && timers_.begin()->first < deadline);
        })) {
      continue;  // shutdown or an earlier deadline arrived
    }
    auto it = timers_.begin();
    std::function<void()> fn = std::move(it->second);
    timers_.erase(it);
    lk.unlock();
    fn();
    lk.lock();
  }
}

void ThreadExecutionBackend::shutdown_timers() {
  {
    std::lock_guard<std::mutex> lk(timer_mu_);
    timer_shutdown_ = true;
    timers_.clear();
  }
  timer_cv_.notify_all();
  if (timer_thread_.joinable()) timer_thread_.join();
}

}  // namespace essex::mtc
