// ESSEX: Grid-site model (paper §5.3, Table 1).
//
// A remote Grid site is characterised by a CPU speed (relative to the
// local Opteron 250), a filesystem factor multiplying pert's
// filesystem-bound part (ORNL's PVFS2 penalty), a queue-wait model and a
// concurrency cap ("limitations of active jobs per user"). The catalogue
// constants are calibrated from the paper's own Table 1 — the DES then
// *derives* singleton times from the model formula rather than echoing
// the table.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "mtc/job.hpp"

namespace essex::mtc {

/// One remote Grid execution site.
struct GridSite {
  std::string name;
  std::string processor;
  double cpu_speed = 1.0;   ///< pemodel speed relative to local
  double fs_factor = 1.0;   ///< multiplier on pert's filesystem part
  std::size_t max_active_jobs = 64;  ///< per-user active-job throttle
  double queue_wait_mean_s = 600.0;  ///< batch queue wait (exponential)
  double gateway_bps = 50e6;  ///< WAN bandwidth home <-> site
  bool advance_reservation = false;  ///< reservation removes queue waits

  /// Model-predicted pert wall time (seconds).
  double pert_seconds(const EsseJobShape& shape) const {
    return shape.pert_cpu_s / cpu_speed + shape.pert_fs_s * fs_factor;
  }
  /// Model-predicted pemodel wall time (seconds).
  double pemodel_seconds(const EsseJobShape& shape) const {
    return shape.pemodel_cpu_s / cpu_speed;
  }

  /// Draw a queue wait for one job submission.
  double sample_queue_wait(Rng& rng) const {
    if (advance_reservation || queue_wait_mean_s <= 0) return 0.0;
    return rng.exponential(1.0 / queue_wait_mean_s);
  }
};

/// The sites of Table 1 (constants calibrated from the paper's numbers).
///
///   site    processor          pert    pemodel
///   ORNL    Pentium4 3.06GHz   67.83   1823.99   (PVFS2-penalised pert)
///   Purdue  Core2 2.33GHz       6.25   1107.40
///   local   Opteron 250 2.4GHz  6.21   1531.33
GridSite ornl_site();
GridSite purdue_site();
GridSite local_as_site();

/// All Table 1 rows in paper order.
std::vector<GridSite> table1_sites();

}  // namespace essex::mtc
