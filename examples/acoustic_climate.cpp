// Ocean-acoustic uncertainty (paper §2.2): ensemble transmission-loss on
// a vertical section, the coupled physical–acoustical covariance, and the
// "acoustic climate" task grid the MTC layer fans out.
//
// Build & run:  ./build/examples/acoustic_climate  [out_dir]
#include <algorithm>
#include <cstdio>
#include <string>

#include "acoustics/ensemble.hpp"
#include "acoustics/slice.hpp"
#include "acoustics/sound_speed.hpp"
#include "acoustics/tl_solver.hpp"
#include "common/field_io.hpp"
#include "common/rng.hpp"
#include "esse/cycle.hpp"
#include "ocean/monterey.hpp"

int main(int argc, char** argv) {
  using namespace essex;
  const std::string out_dir = argc > 1 ? argv[1] : ".";

  ocean::Scenario sc = ocean::make_monterey_scenario(32, 28, 5);
  ocean::OceanModel model(sc.grid, sc.params, ocean::WindForcing(sc.wind),
                          sc.initial);

  // A small forecast ensemble supplies the ocean realisations.
  esse::ErrorSubspace subspace = esse::bootstrap_subspace(
      model, sc.initial, 0.0, 12.0, 12, 0.99, 10, /*seed=*/31);
  esse::PerturbationGenerator gen(subspace, {1.0, 0.01, 31});
  const la::Vector packed = sc.initial.pack();
  std::vector<la::Vector> members;
  for (std::size_t i = 0; i < 10; ++i) {
    ocean::OceanState s(sc.grid);
    s.unpack(gen.perturbed_state(packed, i), sc.grid);
    Rng mrng(31, i + 1);
    model.run(s, 0.0, 12.0, &mrng);
    members.push_back(s.pack());
  }
  std::printf("ensemble of %zu ocean realisations ready\n", members.size());

  // Cross-shore section through the bay mouth.
  acoustics::SliceGeometry geom;
  geom.x0_km = 4.0;
  geom.y0_km = 0.55 * sc.grid.dy_km() * (sc.grid.ny() - 1);
  geom.x1_km = 0.72 * sc.grid.dx_km() * (sc.grid.nx() - 1);
  geom.y1_km = geom.y0_km;
  geom.n_range = 64;
  geom.n_depth = 32;
  geom.max_depth_m = 200.0;

  acoustics::TLParams tl_params;
  tl_params.source_depth_m = 30.0;
  tl_params.frequency_khz = 1.0;

  // Single-realisation sound-speed + broadband TL for orientation.
  acoustics::SoundSpeedSlice slice =
      extract_slice(sc.grid, sc.initial, geom);
  std::printf("sound speed range on the section: %.1f – %.1f m/s\n",
              *std::min_element(slice.c.begin(), slice.c.end()),
              *std::max_element(slice.c.begin(), slice.c.end()));
  acoustics::TLField bb =
      compute_broadband_tl(slice, tl_params, {0.5, 1.0, 2.0});
  write_pgm(bb.to_field(), out_dir + "/tl_broadband.pgm");

  // Ensemble TL statistics: the acoustic uncertainty field.
  acoustics::TLEnsembleStats stats =
      acoustics::tl_ensemble_stats(sc.grid, members, geom, tl_params);
  Field2D sd_field;
  sd_field.nx = geom.n_range;
  sd_field.ny = geom.n_depth;
  sd_field.values.resize(stats.std_tl.size());
  for (std::size_t ir = 0; ir < geom.n_range; ++ir)
    for (std::size_t iz = 0; iz < geom.n_depth; ++iz)
      sd_field.values[iz * geom.n_range + ir] =
          stats.std_tl[ir * geom.n_depth + iz];
  sd_field.x1 = geom.length_km();
  sd_field.y1 = geom.max_depth_m;
  write_pgm(sd_field, out_dir + "/tl_stddev.pgm");
  write_field_csv(sd_field, out_dir + "/tl_stddev.csv");
  std::printf("\nTL uncertainty (std, dB) on the section "
              "(x = range, y = depth):\n%s",
              ascii_map(sd_field, 64, 16).c_str());

  // Coupled physical–acoustical covariance and its dominant modes.
  acoustics::CoupledCovariance cov =
      acoustics::coupled_covariance(sc.grid, members, geom, tl_params, 6);
  std::printf("\ncoupled (T, TL) covariance: rank %zu modes, "
              "T scale %.3f degC, TL scale %.2f dB, coupling %.4f\n",
              cov.modes.rank(), cov.t_scale, cov.tl_scale,
              cov.coupling_strength());

  // The acoustic-climate task grid (what §5.2.1 fanned 6000+ jobs from).
  auto tasks = acoustics::acoustic_climate_tasks(
      sc.grid, 24, {10.0, 30.0, 60.0}, {0.25, 0.5, 1.0, 2.0});
  std::printf("\nacoustic climate: %zu (slice × depth × frequency) tasks "
              "enumerated for the MTC fan-out\n",
              tasks.size());
  std::printf("wrote tl_broadband.pgm, tl_stddev.pgm/csv to %s\n",
              out_dir.c_str());
  return 0;
}
