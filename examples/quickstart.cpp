// ESSEX quickstart: one ESSE assimilation cycle on an idealised
// double-gyre box.
//
//   1. build a scenario (grid + initial state + model),
//   2. bootstrap an initial error subspace from a stochastic ensemble,
//   3. run the ensemble uncertainty forecast (Fig. 2 of the paper),
//   4. assimilate synthetic CTD data from an identical-twin "truth",
//   5. print the innovation and error-variance reduction.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "common/rng.hpp"
#include "esse/cycle.hpp"
#include "linalg/stats.hpp"
#include "obs/instruments.hpp"
#include "ocean/monterey.hpp"

int main() {
  using namespace essex;

  // 1. An idealised double-gyre domain, 24×20×4 grid points.
  ocean::Scenario sc = ocean::make_double_gyre_scenario(24, 20, 4);
  ocean::OceanModel model(sc.grid, sc.params, ocean::WindForcing(sc.wind),
                          sc.initial);
  std::printf("domain: %zux%zux%zu grid, %zu state variables\n",
              sc.grid.nx(), sc.grid.ny(), sc.grid.nz(),
              ocean::OceanState::packed_size(sc.grid));

  // 2. Initial error subspace from a 16-member stochastic spin-up,
  // inflated to represent a realistic initial-condition error (much
  // larger than a day of model noise alone).
  esse::ErrorSubspace raw = esse::bootstrap_subspace(
      model, sc.initial, /*t0=*/0.0, /*spinup_hours=*/12.0,
      /*n_samples=*/16, /*variance_fraction=*/0.99, /*max_rank=*/12,
      /*seed=*/42);
  la::Vector inflated = raw.sigmas();
  for (auto& sig : inflated) sig *= 5.0;
  esse::ErrorSubspace subspace(raw.modes(), inflated);
  std::printf("bootstrap subspace: rank %zu, total variance %.4g\n",
              subspace.rank(), subspace.total_variance());

  // A synthetic "truth" the forecaster never sees (identical twin): the
  // central state displaced by a draw from the claimed initial
  // uncertainty, then evolved with its own model noise.
  ocean::OceanState truth = sc.initial;
  {
    Rng draw_rng(777, 3);
    la::Vector x_truth = sc.initial.pack();
    la::Vector displacement = subspace.sample(draw_rng);
    for (std::size_t i = 0; i < x_truth.size(); ++i)
      x_truth[i] += displacement[i];
    truth.unpack(x_truth, sc.grid);
  }
  Rng truth_rng(777, 1);
  model.run(truth, 0.0, 24.0, &truth_rng);

  // Synthetic CTD casts sampling that truth.
  Rng obs_rng(7);
  obs::ObservationSet casts;
  for (double frac : {0.25, 0.5, 0.75}) {
    auto cast = obs::ctd_cast(
        sc.grid, truth, frac * sc.grid.dx_km() * (sc.grid.nx() - 1),
        0.5 * sc.grid.dy_km() * (sc.grid.ny() - 1), 0.05, 0.02, obs_rng);
    casts.insert(casts.end(), cast.begin(), cast.end());
  }
  obs::ObsOperator h(sc.grid, casts);
  std::printf("observations: %zu CTD samples\n", h.count());

  // 3+4. ESSE cycle: adaptive ensemble forecast, then the subspace
  // Kalman update.
  esse::CycleParams params;
  params.forecast_hours = 24.0;
  params.ensemble = {16, 2.0, 64};
  params.convergence = {0.97, 12};
  params.check_interval = 8;
  params.max_rank = 16;

  esse::CycleResult res = esse::run_assimilation_cycle(
      model, sc.initial, subspace, 0.0, h, params);

  // 5. Report.
  std::printf("\nensemble: %zu members run, converged: %s\n",
              res.forecast.members_run,
              res.forecast.converged ? "yes" : "no");
  for (const auto& s : res.forecast.convergence_history) {
    std::printf("  similarity at N=%-4zu rho = %.4f\n", s.n_members,
                s.similarity);
  }
  std::printf("\nassimilation:\n");
  std::printf("  innovation rms   %.4f -> %.4f\n",
              res.analysis.prior_innovation_rms,
              res.analysis.posterior_innovation_rms);
  std::printf("  error variance   %.4g -> %.4g\n",
              res.analysis.prior_trace, res.analysis.posterior_trace);
  const la::Vector truth_vec = truth.pack();
  std::printf("  state rms error  %.4f -> %.4f (vs hidden truth)\n",
              la::rms_diff(res.forecast.central_forecast, truth_vec),
              la::rms_diff(res.analysis.posterior_state, truth_vec));
  return 0;
}
