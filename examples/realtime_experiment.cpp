// A full simulated at-sea campaign (paper Fig. 1 / §2.1): four forecast
// procedures over a six-day Monterey Bay experiment, each assimilating
// the observation batches available at its start, scored cycle-by-cycle
// against the hidden twin truth.
//
// Build & run:  ./build/examples/realtime_experiment
#include <cstdio>
#include <iostream>

#include "common/table.hpp"
#include "ocean/monterey.hpp"
#include "workflow/realtime_driver.hpp"
#include "workflow/timeline.hpp"

int main() {
  using namespace essex;
  using namespace essex::workflow;

  ocean::Scenario sc = ocean::make_monterey_scenario(28, 24, 5);
  ocean::OceanModel model(sc.grid, sc.params, ocean::WindForcing(sc.wind),
                          sc.initial);

  // Six days of ocean time, daily observation batches available ~2 h
  // after measurement, four forecast procedures.
  ForecastTimeline tl(0.0, 144.0);
  for (int day = 0; day < 5; ++day) {
    const double start = 24.0 * day;
    tl.add_observation_period({start, start + 24.0, start + 26.0,
                               "day " + std::to_string(day + 1)});
  }
  tl.add_procedure({30.0, 36.0, 0.0, 72.0});
  tl.add_procedure({54.0, 60.0, 0.0, 96.0});
  tl.add_procedure({78.0, 84.0, 0.0, 120.0});
  tl.add_procedure({102.0, 108.0, 0.0, 144.0});
  std::printf("%s\n", tl.render().c_str());

  RealtimeConfig cfg;
  cfg.cycle.ensemble = {12, 2.0, 24};
  cfg.cycle.convergence = {0.96, 10};
  cfg.cycle.check_interval = 6;
  cfg.cycle.max_rank = 10;
  cfg.max_rank = 10;

  RealtimeReport report =
      run_realtime_experiment(model, sc.initial, tl, cfg);

  Table t("real-time campaign: per-procedure skill vs hidden truth");
  t.set_header({"tau", "nowcast (h)", "obs", "members", "prior rmse",
                "posterior rmse", "forecast rmse", "spread/skill",
                "persistence rmse"});
  for (std::size_t k = 0; k < report.procedures.size(); ++k) {
    const auto& p = report.procedures[k];
    t.add_row({std::to_string(p.procedure), Table::num(p.nowcast_h, 0),
               std::to_string(p.obs_assimilated),
               std::to_string(p.members_run),
               Table::num(p.nowcast_prior.rmse, 4),
               Table::num(p.nowcast_posterior.rmse, 4),
               Table::num(p.forecast_skill.rmse, 4),
               Table::num(p.spread_skill, 2),
               Table::num(report.persistence_rmse[k], 4)});
  }
  t.print(std::cout);
  std::printf(
      "\nreading: the first cycles cut the error sharply and the system "
      "stays far below persistence thereafter (the residual is largely "
      "unobservable model noise); spread/skill near 1 means the "
      "predicted uncertainty is about the right size.\n");
  return 0;
}
