// AOSN-II-style Monterey Bay re-run (paper §6, Figs. 5/6).
//
// Builds the Monterey-like domain, bootstraps an error subspace ("error
// nowcast for September 3"), runs the ESSE ensemble forecast 48 h ahead
// ("forecast for September 5"), and writes the ensemble standard-
// deviation maps for sea-surface temperature and 30 m temperature — the
// repo's reproduction of Figs. 5 and 6 — as PGM images, CSV grids and
// console ASCII maps. Finally one AOSN-II-like observation campaign is
// assimilated.
//
// Build & run:  ./build/examples/monterey_bay  [out_dir]
#include <cstdio>
#include <string>

#include "common/field_io.hpp"
#include "common/rng.hpp"
#include "esse/cycle.hpp"
#include "obs/instruments.hpp"
#include "ocean/monterey.hpp"

namespace {

essex::Field2D stddev_map(const essex::ocean::Grid3D& grid,
                          const essex::la::Vector& marginal_sd,
                          std::size_t level) {
  essex::Field2D f;
  f.nx = grid.nx();
  f.ny = grid.ny();
  f.values.assign(grid.horizontal_points(), 0.0);
  f.x1 = grid.dx_km() * static_cast<double>(grid.nx() - 1);
  f.y1 = grid.dy_km() * static_cast<double>(grid.ny() - 1);
  for (std::size_t iy = 0; iy < grid.ny(); ++iy)
    for (std::size_t ix = 0; ix < grid.nx(); ++ix)
      if (grid.is_water(ix, iy))
        f.values[iy * grid.nx() + ix] =
            marginal_sd[grid.index(ix, iy, level)];
  return f;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace essex;
  const std::string out_dir = argc > 1 ? argv[1] : ".";

  ocean::Scenario sc = ocean::make_monterey_scenario(48, 40, 6);
  ocean::OceanModel model(sc.grid, sc.params, ocean::WindForcing(sc.wind),
                          sc.initial);
  std::printf("Monterey-like domain: %zux%zux%zu, %zu water columns\n",
              sc.grid.nx(), sc.grid.ny(), sc.grid.nz(),
              sc.grid.water_columns());

  // "Error nowcast": dominant modes of a stochastic spin-up ensemble
  // (stand-in for the Sept 3 posterior error covariance of AOSN-II).
  std::printf("bootstrapping the error nowcast...\n");
  esse::ErrorSubspace nowcast = esse::bootstrap_subspace(
      model, sc.initial, 0.0, 24.0, 24, 0.99, 20, /*seed=*/2003);
  std::printf("  rank %zu, total variance %.4g\n", nowcast.rank(),
              nowcast.total_variance());

  // ESSE uncertainty forecast, 48 h ahead, adaptive ensemble size.
  esse::CycleParams params;
  params.forecast_hours = 48.0;
  params.ensemble = {24, 2.0, 96};
  params.convergence = {0.97, 16};
  params.check_interval = 8;
  params.max_rank = 24;
  params.perturbation.white_noise = 0.01;  // truncated-tail noise (§6)

  std::printf("running the ensemble forecast...\n");
  esse::ForecastResult fr = esse::run_uncertainty_forecast(
      model, sc.initial, nowcast, 0.0, params);
  std::printf("  %zu members, converged: %s\n", fr.members_run,
              fr.converged ? "yes" : "no");

  const la::Vector sd = fr.forecast_subspace.marginal_stddev();

  // Fig. 5: SST uncertainty.
  Field2D sst_sd = stddev_map(sc.grid, sd, 0);
  write_pgm(sst_sd, out_dir + "/fig5_sst_stddev.pgm");
  write_field_csv(sst_sd, out_dir + "/fig5_sst_stddev.csv");
  std::printf("\nFig. 5 — ESSE uncertainty forecast, SST stddev (degC):\n%s",
              ascii_map(sst_sd).c_str());

  // Fig. 6: 30 m temperature uncertainty.
  const std::size_t lvl30 = sc.grid.level_near_depth(30.0);
  Field2D t30_sd = stddev_map(sc.grid, sd, lvl30);
  write_pgm(t30_sd, out_dir + "/fig6_t30m_stddev.pgm");
  write_field_csv(t30_sd, out_dir + "/fig6_t30m_stddev.csv");
  std::printf("\nFig. 6 — ESSE uncertainty forecast, %.0f m T stddev:\n%s",
              sc.grid.depths()[lvl30], ascii_map(t30_sd).c_str());

  // Assimilate an AOSN-II-like campaign sampled from a hidden truth.
  ocean::OceanState truth = sc.initial;
  Rng trng(2003, 1);
  model.run(truth, 0.0, 48.0, &trng);
  Rng obs_rng(9);
  auto campaign = obs::aosn_campaign(sc.grid, truth, obs_rng);
  obs::ObsOperator h(sc.grid, campaign);
  esse::AnalysisResult an =
      esse::analyze(fr.central_forecast, fr.forecast_subspace, h);
  std::printf("\nassimilated %zu obs (CTD+gliders+AUV+SST):\n", h.count());
  std::printf("  innovation rms %.4f -> %.4f\n", an.prior_innovation_rms,
              an.posterior_innovation_rms);
  std::printf("  error variance %.4g -> %.4g\n", an.prior_trace,
              an.posterior_trace);
  std::printf("\nwrote fig5/fig6 PGM+CSV files to %s\n", out_dir.c_str());
  return 0;
}
