// A simulated real-time forecast day (paper §5): the Fig. 1 timeline, a
// 600-member parallel ESSE run on the home-cluster model, the acoustics
// fan-out, and an EC2-augmented rerun with its bill.
//
// Build & run:  ./build/examples/mtc_cluster_sim
#include <cstdio>
#include <iostream>

#include "common/table.hpp"
#include "mtc/cloud.hpp"
#include "mtc/cluster.hpp"
#include "mtc/grid_site.hpp"
#include "mtc/scheduler.hpp"
#include "mtc/sim.hpp"
#include "workflow/augmentation.hpp"
#include "workflow/esse_workflow_sim.hpp"
#include "workflow/timeline.hpp"

int main() {
  using namespace essex;
  using namespace essex::workflow;

  // --- the forecast day's timeline (Fig. 1) -----------------------------
  ForecastTimeline tl(0.0, 96.0);
  tl.add_observation_period({0.0, 24.0, 26.0, "gliders day 1"});
  tl.add_observation_period({24.0, 48.0, 50.0, "gliders + CTD day 2"});
  tl.add_observation_period({48.0, 58.0, 59.0, "morning SST + AUV"});
  tl.add_procedure({60.0, 72.0, 0.0, 96.0});
  std::printf("%s\n", tl.render().c_str());

  // --- 600-member parallel ESSE on the home cluster ----------------------
  mtc::EsseJobShape shape;  // calibrated from the paper's Table 1/§5.4.2
  EsseWorkflowConfig cfg;
  cfg.shape = shape;
  cfg.initial_members = 600;
  cfg.converge_at = 600;
  cfg.max_members = 960;
  cfg.svd_stride = 50;
  cfg.staging = mtc::InputStaging::kPrestageLocal;
  cfg.master_node = 117;  // the head node in make_home_cluster()

  mtc::Simulator sim;
  mtc::ClusterScheduler sched(sim, mtc::make_home_cluster(15),
                              mtc::sge_params());
  std::printf("home cluster: %zu cores available of %zu\n",
              sched.cluster().available_cores(),
              sched.cluster().total_cores());
  WorkflowMetrics esse = run_parallel_esse(sim, sched, cfg);
  std::printf("parallel ESSE, 600 members, prestaged inputs:\n");
  std::printf("  makespan %.1f min, pert cpu utilisation %.0f%%, "
              "svd runs %zu\n",
              esse.makespan_s / 60.0, 100.0 * esse.pert_cpu_utilization,
              esse.svd_runs);

  // --- the acoustics fan-out that followed (§5.2.1) ----------------------
  mtc::Simulator sim2;
  mtc::SchedulerParams ap = mtc::sge_params();
  ap.use_job_arrays = false;  // the paper submitted 6000+ singletons
  mtc::ClusterScheduler sched2(sim2, mtc::make_home_cluster(15), ap);
  FanoutMetrics ac = run_acoustics_fanout(sim2, sched2, shape, 6000);
  std::printf("acoustics fan-out: %zu×3-minute jobs in %.1f min\n",
              ac.completed, ac.makespan_s / 60.0);

  // --- EC2-augmented rerun with the bill (§5.4) ---------------------------
  AugmentationConfig aug;
  aug.shape = shape;
  aug.members = 960;
  aug.home = mtc::make_home_cluster(15);
  GridPoolConfig purdue;
  purdue.site = mtc::purdue_site();
  purdue.cores = 64;
  aug.grid_pools.push_back(purdue);
  CloudPoolConfig cloud;
  cloud.instance = mtc::ec2_c1_xlarge();
  cloud.instances = 20;
  aug.cloud_pool = cloud;
  AugmentationResult res = run_augmented_ensemble(aug);

  Table t("960 members: home + Purdue + 20×c1.xlarge");
  t.set_header({"pool", "members", "first done (min)", "last done (min)",
                "startup wait (min)"});
  for (const auto& p : res.pools) {
    t.add_row({p.name, std::to_string(p.members_assigned),
               Table::num(p.first_finish_s / 60.0, 1),
               Table::num(p.last_finish_s / 60.0, 1),
               Table::num(p.queue_wait_s / 60.0, 1)});
  }
  t.print(std::cout);
  std::printf("makespan %.1f min (local-only would be %.1f min), "
              "completion disorder %.0f%%\n",
              res.makespan_s / 60.0, res.local_only_makespan_s / 60.0,
              100.0 * res.disorder_fraction);
  std::printf("EC2 bill: $%.2f on-demand, $%.2f with reserved instances\n",
              res.cloud_cost_usd, res.cloud_cost_reserved_usd);
  return 0;
}
